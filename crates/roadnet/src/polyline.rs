//! Arc-length-parameterised polylines for lane centrelines.

use rdsim_math::{Pose2, Vec2};
use rdsim_units::{Meters, Radians};
use serde::{Deserialize, Serialize};

/// Segments per pruning chunk of the projection index.
const CHUNK: usize = 16;

/// Skip margin for the exact pruning in [`Polyline::project`]: a chunk or
/// lane is only skipped when its box lower bound exceeds the pruning
/// threshold by more than this relative slack, which conservatively
/// absorbs the few-ulp rounding of the bound and candidate arithmetic.
pub(crate) const PRUNE_SLACK: f64 = 1.0 - 1e-9;

/// Axis-aligned bounding box over a run of consecutive polyline vertices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SegAabb {
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
}

impl SegAabb {
    const EMPTY: SegAabb = SegAabb {
        min_x: f64::INFINITY,
        min_y: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        max_y: f64::NEG_INFINITY,
    };

    fn include(&mut self, p: Vec2) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Lower bound on the squared distance from `p` to anything inside
    /// the box (0 when `p` is inside).
    #[inline]
    pub(crate) fn dist2_lower(&self, p: Vec2) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        dx * dx + dy * dy
    }
}

/// A polyline with precomputed cumulative arc lengths.
///
/// Lane centrelines are stored as polylines densely sampled from straights
/// and arcs; with ~1 m vertex spacing the chord error of an urban-radius
/// curve is far below lane-width tolerances.
///
/// Construction also builds a chunked bounding-box index ([`CHUNK`]
/// segments per box) used by [`project`](Self::project) to skip runs of
/// segments that provably cannot contain the nearest point — an exact
/// optimisation: results are bit-identical to the plain linear scan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    points: Vec<Vec2>,
    /// `cum[i]` is the arc length from the start to `points[i]`.
    cum: Vec<f64>,
    /// Bounding box of vertices `[k*CHUNK ..= min(end, (k+1)*CHUNK)]` —
    /// i.e. every segment in chunk `k` including its shared endpoints.
    #[serde(skip)]
    chunks: Vec<SegAabb>,
    /// Bounding box of the whole polyline.
    #[serde(skip)]
    bounds: SegAabb,
}

impl Polyline {
    /// Creates a polyline from at least two points.
    ///
    /// Consecutive duplicate points are removed; at least two distinct
    /// points must remain.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two distinct points are supplied.
    pub fn new(points: Vec<Vec2>) -> Self {
        let mut dedup: Vec<Vec2> = Vec::with_capacity(points.len());
        for p in points {
            if dedup.last().is_none_or(|q| q.distance(p) > 1e-9) {
                dedup.push(p);
            }
        }
        assert!(
            dedup.len() >= 2,
            "polyline needs at least two distinct points"
        );
        let mut cum = Vec::with_capacity(dedup.len());
        let mut total = 0.0;
        cum.push(0.0);
        for w in dedup.windows(2) {
            total += w[0].distance(w[1]);
            cum.push(total);
        }
        let nseg = dedup.len() - 1;
        let mut bounds = SegAabb::EMPTY;
        for &p in &dedup {
            bounds.include(p);
        }
        let mut chunks = Vec::with_capacity(nseg.div_ceil(CHUNK));
        for start in (0..nseg).step_by(CHUNK) {
            let mut bb = SegAabb::EMPTY;
            // Include both endpoints of every segment in the chunk.
            for &p in &dedup[start..=(start + CHUNK).min(nseg)] {
                bb.include(p);
            }
            chunks.push(bb);
        }
        Polyline {
            points: dedup,
            cum,
            chunks,
            bounds,
        }
    }

    /// Exact lower bound on the squared distance from `p` to any point of
    /// the polyline (0 when `p` is inside its bounding box). Lets callers
    /// holding a candidate projection skip whole polylines that provably
    /// cannot beat it.
    pub fn distance_lower_bound_sq(&self, p: Vec2) -> f64 {
        self.bounds.dist2_lower(p)
    }

    /// The vertices of the polyline.
    pub fn points(&self) -> &[Vec2] {
        &self.points
    }

    /// Total arc length.
    pub fn length(&self) -> Meters {
        Meters::new(*self.cum.last().expect("non-empty"))
    }

    /// The point at arc length `s`, clamped to `[0, length]`.
    pub fn point_at(&self, s: Meters) -> Vec2 {
        let (i, t) = self.locate(s.get());
        self.points[i].lerp(self.points[i + 1], t)
    }

    /// The unit tangent direction at arc length `s`.
    pub fn tangent_at(&self, s: Meters) -> Vec2 {
        let (i, _) = self.locate(s.get());
        (self.points[i + 1] - self.points[i])
            .normalized()
            .expect("distinct points")
    }

    /// The heading of the tangent at arc length `s`.
    pub fn heading_at(&self, s: Meters) -> Radians {
        self.tangent_at(s).heading()
    }

    /// The pose (point + tangent heading) at arc length `s`.
    pub fn pose_at(&self, s: Meters) -> Pose2 {
        Pose2::new(self.point_at(s), self.heading_at(s))
    }

    /// Point offset laterally from the centreline at arc length `s`
    /// (positive = left of travel direction).
    pub fn offset_point_at(&self, s: Meters, lateral: Meters) -> Vec2 {
        let pose = self.pose_at(s);
        pose.position + pose.left() * lateral.get()
    }

    /// Projects a world point onto the polyline.
    ///
    /// Returns `(s, lateral, distance)`: the arc length of the closest
    /// point, the **signed** lateral offset (positive = left of travel
    /// direction) and the absolute distance.
    pub fn project(&self, p: Vec2) -> (Meters, Meters, Meters) {
        let mut best_d2 = f64::INFINITY;
        let mut best_s = 0.0;
        let mut best_seg = 0usize;
        let mut best_point = self.points[0];
        let nseg = self.points.len() - 1;
        // Pruning threshold: the squared distance to one real vertex per
        // chunk upper-bounds the eventual best (that vertex is itself a
        // projection candidate), so any chunk whose box lower bound
        // exceeds min(threshold, running best) — with PRUNE_SLACK
        // absorbing float rounding — contains only candidates that can
        // never *strictly* beat the best. Skipping them preserves the
        // first-minimal-segment tie-break exactly.
        let mut ub = f64::INFINITY;
        if self.chunks.len() > 1 {
            for start in (0..nseg).step_by(CHUNK) {
                ub = ub.min((p - self.points[start]).length_squared());
            }
            ub = ub.min((p - self.points[nseg]).length_squared());
        }
        for (ci, bb) in self.chunks.iter().enumerate() {
            if bb.dist2_lower(p) * PRUNE_SLACK > best_d2.min(ub) {
                continue;
            }
            let start = ci * CHUNK;
            for i in start..(start + CHUNK).min(nseg) {
                let (t, q) = p.project_onto_segment(self.points[i], self.points[i + 1]);
                let d2 = (p - q).length_squared();
                if d2 < best_d2 {
                    best_d2 = d2;
                    best_seg = i;
                    best_point = q;
                    best_s = self.cum[i] + (self.cum[i + 1] - self.cum[i]) * t;
                }
            }
        }
        let seg_dir = (self.points[best_seg + 1] - self.points[best_seg])
            .normalized()
            .expect("distinct points");
        let lateral = seg_dir.cross(p - best_point);
        (
            Meters::new(best_s),
            Meters::new(lateral),
            Meters::new(best_d2.sqrt()),
        )
    }

    /// Binary-searches the segment containing arc length `s`.
    ///
    /// Returns `(segment index, parameter within segment ∈ [0, 1])`.
    fn locate(&self, s: f64) -> (usize, f64) {
        let total = *self.cum.last().expect("non-empty");
        let s = s.clamp(0.0, total);
        // partition_point: first index with cum > s, then step back.
        let idx = self.cum.partition_point(|&c| c <= s);
        let i = idx.saturating_sub(1).min(self.points.len() - 2);
        let seg_len = self.cum[i + 1] - self.cum[i];
        let t = if seg_len > 1e-12 {
            ((s - self.cum[i]) / seg_len).clamp(0.0, 1.0)
        } else {
            0.0
        };
        (i, t)
    }

    /// Builds a straight line from `start` to `end`, sampled every
    /// `max_spacing` metres.
    ///
    /// # Panics
    ///
    /// Panics if `max_spacing` is not positive or the points coincide.
    pub fn straight(start: Vec2, end: Vec2, max_spacing: Meters) -> Self {
        assert!(max_spacing.get() > 0.0, "spacing must be positive");
        let dist = start.distance(end);
        assert!(dist > 1e-9, "start and end coincide");
        let n = (dist / max_spacing.get()).ceil().max(1.0) as usize;
        let pts = (0..=n)
            .map(|k| start.lerp(end, k as f64 / n as f64))
            .collect();
        Polyline::new(pts)
    }

    /// Builds a circular arc around `center`, from `start_angle` sweeping
    /// `sweep` radians (positive = counter-clockwise), sampled with chord
    /// spacing ≈ `max_spacing`.
    ///
    /// # Panics
    ///
    /// Panics if `radius` or `max_spacing` is not positive, or `sweep` is 0.
    pub fn arc(
        center: Vec2,
        radius: Meters,
        start_angle: Radians,
        sweep: Radians,
        max_spacing: Meters,
    ) -> Self {
        assert!(radius.get() > 0.0, "radius must be positive");
        assert!(max_spacing.get() > 0.0, "spacing must be positive");
        assert!(sweep.get().abs() > 1e-9, "sweep must be non-zero");
        let arc_len = radius.get() * sweep.get().abs();
        let n = (arc_len / max_spacing.get()).ceil().max(2.0) as usize;
        let pts = (0..=n)
            .map(|k| {
                let a = start_angle.get() + sweep.get() * k as f64 / n as f64;
                center + Vec2::new(a.cos(), a.sin()) * radius.get()
            })
            .collect();
        Polyline::new(pts)
    }

    /// Concatenates another polyline onto the end of this one.
    ///
    /// The first point of `other` should coincide with (or be close to) the
    /// last point of `self`; duplicates are merged.
    pub fn extend_with(mut self, other: &Polyline) -> Self {
        let mut pts = std::mem::take(&mut self.points);
        pts.extend_from_slice(other.points());
        Polyline::new(pts)
    }

    /// A copy offset laterally by `offset` metres (positive = left of the
    /// direction of travel). Used to derive parallel lanes from a reference
    /// centreline.
    pub fn offset(&self, offset: Meters) -> Polyline {
        let n = self.points.len();
        let mut pts = Vec::with_capacity(n);
        for i in 0..n {
            // Average the directions of adjacent segments for smooth offsets.
            let dir_in = if i > 0 {
                (self.points[i] - self.points[i - 1]).normalized()
            } else {
                None
            };
            let dir_out = if i + 1 < n {
                (self.points[i + 1] - self.points[i]).normalized()
            } else {
                None
            };
            let dir = match (dir_in, dir_out) {
                (Some(a), Some(b)) => (a + b).normalized().unwrap_or(a),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => unreachable!("polyline has >= 2 points"),
            };
            pts.push(self.points[i] + dir.perp() * offset.get());
        }
        Polyline::new(pts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn straight10() -> Polyline {
        Polyline::straight(Vec2::ZERO, Vec2::new(10.0, 0.0), Meters::new(1.0))
    }

    #[test]
    fn straight_length_and_points() {
        let p = straight10();
        assert!((p.length().get() - 10.0).abs() < 1e-12);
        assert_eq!(p.point_at(Meters::ZERO), Vec2::ZERO);
        let mid = p.point_at(Meters::new(5.0));
        assert!((mid.x - 5.0).abs() < 1e-12 && mid.y.abs() < 1e-12);
        // Clamping beyond the end.
        let end = p.point_at(Meters::new(99.0));
        assert!((end.x - 10.0).abs() < 1e-12);
    }

    #[test]
    fn tangent_and_heading() {
        let p = straight10();
        let t = p.tangent_at(Meters::new(3.0));
        assert!((t.x - 1.0).abs() < 1e-12 && t.y.abs() < 1e-12);
        assert!(p.heading_at(Meters::new(3.0)).get().abs() < 1e-12);
    }

    #[test]
    fn projection_signed_lateral() {
        let p = straight10();
        // Point above the line (left of travel) → positive lateral.
        let (s, lat, d) = p.project(Vec2::new(4.0, 2.0));
        assert!((s.get() - 4.0).abs() < 1e-12);
        assert!((lat.get() - 2.0).abs() < 1e-12);
        assert!((d.get() - 2.0).abs() < 1e-12);
        // Point below → negative lateral.
        let (_, lat, _) = p.project(Vec2::new(4.0, -1.5));
        assert!((lat.get() + 1.5).abs() < 1e-12);
    }

    #[test]
    fn arc_geometry() {
        // Quarter circle radius 10 around origin starting at angle 0 (point
        // (10,0)) sweeping CCW to (0,10).
        let a = Polyline::arc(
            Vec2::ZERO,
            Meters::new(10.0),
            Radians::new(0.0),
            Radians::new(FRAC_PI_2),
            Meters::new(0.5),
        );
        let expected_len = 10.0 * FRAC_PI_2;
        assert!((a.length().get() - expected_len).abs() < 0.05);
        let start = a.point_at(Meters::ZERO);
        assert!((start.x - 10.0).abs() < 1e-9 && start.y.abs() < 1e-9);
        let end = a.point_at(a.length());
        assert!(end.x.abs() < 1e-9 && (end.y - 10.0).abs() < 1e-9);
        // Tangent at start of a CCW arc from angle 0 points in +y.
        let t = a.tangent_at(Meters::ZERO);
        assert!(t.y > 0.9);
    }

    #[test]
    fn dedup_and_panic_on_degenerate() {
        let p = Polyline::new(vec![
            Vec2::ZERO,
            Vec2::ZERO,
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 0.0),
        ]);
        assert_eq!(p.points().len(), 2);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn single_point_panics() {
        let _ = Polyline::new(vec![Vec2::ZERO, Vec2::ZERO]);
    }

    #[test]
    fn extend_joins() {
        let a = Polyline::straight(Vec2::ZERO, Vec2::new(5.0, 0.0), Meters::new(1.0));
        let b = Polyline::straight(Vec2::new(5.0, 0.0), Vec2::new(5.0, 5.0), Meters::new(1.0));
        let joined = a.extend_with(&b);
        assert!((joined.length().get() - 10.0).abs() < 1e-9);
        let p = joined.point_at(Meters::new(7.5));
        assert!((p.x - 5.0).abs() < 1e-9 && (p.y - 2.5).abs() < 1e-9);
    }

    #[test]
    fn offset_straight() {
        let p = straight10().offset(Meters::new(3.5));
        // Offset left of +x travel = +y.
        let q = p.point_at(Meters::new(5.0));
        assert!((q.y - 3.5).abs() < 1e-9);
        assert!((p.length().get() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn offset_arc_changes_radius() {
        let a = Polyline::arc(
            Vec2::ZERO,
            Meters::new(10.0),
            Radians::new(0.0),
            Radians::new(PI),
            Meters::new(0.2),
        );
        // Left of CCW travel is toward the centre → radius shrinks.
        let inner = a.offset(Meters::new(2.0));
        let r_mid = inner.point_at(inner.length() / 2.0).length();
        assert!((r_mid - 8.0).abs() < 0.05, "r_mid = {r_mid}");
    }

    #[test]
    fn pose_at_offset_point() {
        let p = straight10();
        let off = p.offset_point_at(Meters::new(2.0), Meters::new(-1.0));
        assert!((off.x - 2.0).abs() < 1e-9 && (off.y + 1.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn project_point_on_line_has_zero_lateral(s in 0.0f64..10.0) {
            let p = straight10();
            let q = p.point_at(Meters::new(s));
            let (s2, lat, d) = p.project(q);
            prop_assert!((s2.get() - s).abs() < 1e-9);
            prop_assert!(lat.get().abs() < 1e-9);
            prop_assert!(d.get() < 1e-9);
        }

        #[test]
        fn point_at_is_on_polyline(s in -5.0f64..15.0) {
            let p = straight10();
            let q = p.point_at(Meters::new(s));
            let (_, _, d) = p.project(q);
            prop_assert!(d.get() < 1e-9);
        }

        #[test]
        fn arc_points_at_radius(sweep in 0.2f64..6.0, r in 1.0f64..100.0) {
            let a = Polyline::arc(
                Vec2::new(3.0, -2.0),
                Meters::new(r),
                Radians::new(0.3),
                Radians::new(sweep),
                Meters::new(0.5),
            );
            for pt in a.points() {
                prop_assert!((pt.distance(Vec2::new(3.0, -2.0)) - r).abs() < 1e-9);
            }
        }
    }
}
