//! Property tests for the log2 histogram against a sorted-vec oracle.
//!
//! The oracle computes the exact order statistic `sorted[ceil(q*n) - 1]`.
//! The histogram's guarantee is that its interpolated estimate (a) lies in
//! the observed `[min, max]` range and (b) falls in the *same base-2
//! bucket* as the exact order statistic — i.e. the relative error is
//! bounded by the bucket width of a factor of two.

use proptest::prelude::*;
use rdsim_obs::{bucket_bounds, bucket_index, Histogram};

fn oracle_rank(q: f64, n: usize) -> usize {
    ((q * n as f64).ceil() as usize).clamp(1, n)
}

fn check_against_oracle(mut values: Vec<u64>, q: f64) {
    let hist = Histogram::new();
    for &v in &values {
        hist.record(v);
    }
    let snap = hist.snapshot();
    values.sort_unstable();

    // Exact aggregates must match the oracle.
    prop_assert_eq!(snap.count as usize, values.len());
    prop_assert_eq!(snap.min, values[0]);
    prop_assert_eq!(snap.max, *values.last().unwrap());
    let oracle_sum = values.iter().fold(0u128, |a, &v| a + u128::from(v));
    prop_assert_eq!(snap.sum, oracle_sum);
    let oracle_mean = oracle_sum as f64 / values.len() as f64;
    prop_assert_eq!(
        snap.mean(),
        oracle_mean,
        "mean must be exact, not bucket-approximated"
    );

    // Bucket totals must partition the sorted values.
    for (i, &n) in snap.buckets.iter().enumerate() {
        let expect = values.iter().filter(|&&v| bucket_index(v) == i).count() as u64;
        prop_assert_eq!(n, expect, "bucket {} count", i);
    }

    // Quantile estimate: same bucket as the exact order statistic, and
    // inside the observed range.
    let exact = values[oracle_rank(q, values.len()) - 1];
    let est = snap.quantile(q);
    prop_assert!(est >= snap.min && est <= snap.max);
    let bucket = bucket_index(exact);
    let (lo, hi) = bucket_bounds(bucket);
    prop_assert!(
        est >= lo.max(snap.min) && est <= hi.min(snap.max),
        "q={} est={} exact={} bucket={} [{}..{}] min={} max={}",
        q,
        est,
        exact,
        bucket,
        lo,
        hi,
        snap.min,
        snap.max
    );
}

proptest! {
    #[test]
    fn quantiles_match_oracle_small_values(
        values in proptest::collection::vec(0u64..10_000, 1..300),
        q in 0.0f64..1.0,
    ) {
        check_against_oracle(values, q);
    }

    #[test]
    fn quantiles_match_oracle_full_range(
        values in proptest::collection::vec(proptest::num::u64::ANY, 1..120),
        q in 0.0f64..1.0,
    ) {
        check_against_oracle(values, q);
    }

    #[test]
    fn merge_matches_oracle_and_carries_past_u64(
        parts in proptest::collection::vec(
            proptest::collection::vec(proptest::num::u64::ANY, 0..40),
            1..6,
        ),
    ) {
        // Fold per-partition snapshots in both directions; each must equal
        // recording every sample into one histogram. u64::MAX-scale samples
        // push the exact sum well past 2^64, exercising the carry word.
        let all = Histogram::new();
        let mut snaps = Vec::new();
        for part in &parts {
            let h = Histogram::new();
            for &v in part {
                h.record(v);
                all.record(v);
            }
            snaps.push(h.snapshot());
        }
        let expect = all.snapshot();
        let oracle_sum = parts
            .iter()
            .flatten()
            .fold(0u128, |a, &v| a + u128::from(v));
        prop_assert_eq!(expect.sum, oracle_sum);

        let mut fwd = rdsim_obs::HistogramSnapshot::default();
        for s in &snaps {
            fwd.merge(s);
        }
        let mut rev = rdsim_obs::HistogramSnapshot::default();
        for s in snaps.iter().rev() {
            rev.merge(s);
        }
        prop_assert_eq!(&fwd, &expect);
        prop_assert_eq!(&rev, &expect, "merge must be commutative");
    }

    #[test]
    fn named_quantiles_within_one_bucket_of_exact_percentile(
        values in proptest::collection::vec(0u64..(1u64 << 50), 1..300),
    ) {
        // Cross-check p50/p99 against rdsim-math's exact linear-
        // interpolated percentile of the sorted slice. The two rank
        // conventions differ by less than one position — the histogram
        // targets `ceil(q·n)`, the math percentile interpolates around
        // `1 + q·(n−1)` — so both values must land inside the base-2
        // buckets spanned by the bracketing order statistics
        // `sorted[floor(rank)] ..= sorted[ceil(rank)]`. Values stay
        // below 2^50 so the f64 conversion is exact.
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let mut sorted = values;
        sorted.sort_unstable();
        let as_f64: Vec<f64> = sorted.iter().map(|&v| v as f64).collect();
        for (pct, est) in [(50.0, snap.p50()), (99.0, snap.p99())] {
            let exact = rdsim_math::percentile_sorted(&as_f64, pct);
            let rank = pct / 100.0 * (sorted.len() - 1) as f64;
            let lo_stat = sorted[rank.floor() as usize];
            let hi_stat = sorted[rank.ceil() as usize];
            let (blo, _) = bucket_bounds(bucket_index(lo_stat));
            let (_, bhi) = bucket_bounds(bucket_index(hi_stat));
            prop_assert!(
                est >= blo.max(snap.min) && est <= bhi.min(snap.max),
                "p{} estimate {} outside bracket buckets [{}..{}] (stats {}..{})",
                pct, est, blo, bhi, lo_stat, hi_stat
            );
            prop_assert!(
                exact >= blo as f64 && exact <= bhi as f64,
                "p{} exact {} outside bracket buckets [{}..{}]",
                pct, exact, blo, bhi
            );
        }
    }

    #[test]
    fn named_percentiles_are_ordered(
        values in proptest::collection::vec(0u64..1_000_000, 2..200),
    ) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        prop_assert!(snap.p50() <= snap.p90());
        prop_assert!(snap.p90() <= snap.p99());
        prop_assert!(snap.p99() <= snap.max);
        prop_assert!(snap.min <= snap.p50());
    }
}
