//! Property tests for telemetry merging and the trace flight recorder.
//!
//! * `RunTelemetry::merge` is associative, and commutative on the
//!   order-insensitive parts (counters, histograms, drop/wall totals).
//!   Gauges are last-wins and events concatenate, so those are *expected*
//!   to be order-sensitive — the tests pin down exactly that split.
//! * Merged histograms agree with a brute-force oracle that records every
//!   sample into one histogram directly.
//! * The trace ring never loses the most recent `capacity` entries, for
//!   arbitrary push sequences and interleavings.

use proptest::prelude::*;
use rdsim_obs::{
    Event, Histogram, RunTelemetry, TraceEvent, TraceId, TraceRing, TraceStage, Tracer,
};

// --- Generators -----------------------------------------------------------

/// A small pool of names so merges actually collide on shared keys.
fn name(i: u8) -> String {
    format!("metric.{}", i % 5)
}

fn arb_telemetry() -> impl Strategy<Value = RunTelemetry> {
    let counters = proptest::collection::vec((0u8..10, 0u64..1_000_000), 0..6);
    let hists = proptest::collection::vec(
        (
            0u8..10,
            proptest::collection::vec(proptest::num::u64::ANY, 0..20),
        ),
        0..4,
    );
    let events = proptest::collection::vec((0u8..10, 0u64..1_000_000), 0..4);
    (counters, hists, events, 0u64..1_000, 0u64..1_000_000).prop_map(
        |(counters, hists, events, dropped, wall)| {
            let mut t = RunTelemetry::default();
            for (n, v) in counters {
                *t.counters.entry(name(n)).or_insert(0) += v;
            }
            for (n, samples) in hists {
                let h = Histogram::new();
                for s in samples {
                    h.record(s);
                }
                t.histograms
                    .entry(name(n))
                    .or_default()
                    .merge(&h.snapshot());
            }
            for (n, sim_us) in events {
                t.events.push(Event {
                    name: name(n),
                    sim_us,
                    wall_ns: 0,
                    note: String::new(),
                });
            }
            t.events_dropped = dropped;
            t.wall_elapsed_ns = wall;
            t
        },
    )
}

fn merged(a: &RunTelemetry, b: &RunTelemetry) -> RunTelemetry {
    let mut out = a.clone();
    out.merge(b);
    out
}

// --- Merge laws -----------------------------------------------------------

proptest! {
    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), on the whole structure.
    #[test]
    fn merge_is_associative(
        a in arb_telemetry(),
        b in arb_telemetry(),
        c in arb_telemetry(),
    ) {
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left, right);
    }

    /// a ⊕ b == b ⊕ a for everything except the deliberately
    /// order-sensitive parts: gauges (last-wins) and the event *order*
    /// (concatenation). Event multisets still agree.
    #[test]
    fn merge_is_commutative_on_order_insensitive_parts(
        a in arb_telemetry(),
        b in arb_telemetry(),
    ) {
        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        prop_assert_eq!(&ab.counters, &ba.counters);
        prop_assert_eq!(&ab.histograms, &ba.histograms);
        prop_assert_eq!(ab.events_dropped, ba.events_dropped);
        prop_assert_eq!(ab.wall_elapsed_ns, ba.wall_elapsed_ns);
        let mut ev_ab: Vec<_> = ab.events.iter().map(Event::deterministic_key).collect();
        let mut ev_ba: Vec<_> = ba.events.iter().map(Event::deterministic_key).collect();
        ev_ab.sort();
        ev_ba.sort();
        prop_assert_eq!(ev_ab, ev_ba, "same events, possibly reordered");
    }

    /// The identity element: merging a default leaves everything unchanged.
    #[test]
    fn merge_with_default_is_identity(a in arb_telemetry()) {
        prop_assert_eq!(merged(&a, &RunTelemetry::default()), a.clone());
        prop_assert_eq!(merged(&RunTelemetry::default(), &a), a);
    }

    /// Merging per-run histograms equals recording every sample into one
    /// histogram directly (the brute-force oracle).
    #[test]
    fn histogram_merge_matches_brute_force(
        runs in proptest::collection::vec(
            proptest::collection::vec(proptest::num::u64::ANY, 0..40),
            1..6,
        ),
    ) {
        let mut campaign = RunTelemetry::default();
        let oracle = Histogram::new();
        for samples in &runs {
            let h = Histogram::new();
            for &s in samples {
                h.record(s);
                oracle.record(s);
            }
            let mut run = RunTelemetry::default();
            run.histograms.insert("h".into(), h.snapshot());
            campaign.merge(&run);
        }
        let merged = campaign.histogram("h").expect("at least one run merged");
        prop_assert_eq!(merged, &oracle.snapshot());
    }
}

// --- Trace-ring retention -------------------------------------------------

fn ev(tag: u64, n: u64) -> TraceEvent {
    TraceEvent {
        id: TraceId::frame(tag),
        stage: TraceStage::Capture,
        sim_us: n,
        arg: tag,
    }
}

proptest! {
    /// After n pushes into a ring of capacity c, the snapshot is exactly
    /// the last min(n, c) entries in order, and the overwrite counter
    /// accounts for every entry not retained.
    #[test]
    fn ring_retains_exactly_the_most_recent_entries(
        capacity in 1usize..64,
        n in 0usize..300,
    ) {
        let ring = TraceRing::with_capacity(capacity);
        for i in 0..n {
            ring.push(ev(0, i as u64));
        }
        let kept: Vec<u64> = ring.snapshot().iter().map(|e| e.sim_us).collect();
        let expect: Vec<u64> = (n.saturating_sub(capacity)..n).map(|i| i as u64).collect();
        prop_assert_eq!(kept, expect);
        prop_assert_eq!(ring.overwritten() as usize, n.saturating_sub(capacity));
    }

    /// Arbitrary interleavings of several logical streams through one
    /// shared tracer: the ring keeps the globally most recent `capacity`
    /// events, and each stream's retained suffix preserves its order.
    #[test]
    fn ring_preserves_order_under_interleaving(
        capacity in 1usize..48,
        streams in proptest::collection::vec(0u64..4, 0..200),
    ) {
        let tracer = Tracer::with_capacity(capacity);
        let mut counters = [0u64; 4];
        let mut all = Vec::new();
        for (i, &s) in streams.iter().enumerate() {
            let e = ev(s, i as u64);
            tracer.record(e.id, e.stage, e.sim_us, counters[s as usize]);
            counters[s as usize] += 1;
            all.push((s, i as u64));
        }
        let log = tracer.log();
        // Globally: the last `capacity` events, in push order.
        let kept: Vec<u64> = log.events.iter().map(|e| e.sim_us).collect();
        let expect: Vec<u64> = all
            .iter()
            .skip(all.len().saturating_sub(capacity))
            .map(|&(_, i)| i)
            .collect();
        prop_assert_eq!(kept, expect);
        // Per stream: retained args (each stream's own sequence) ascend.
        for s in 0..4u64 {
            let args: Vec<u64> = log
                .events
                .iter()
                .filter(|e| e.id == TraceId::frame(s))
                .map(|e| e.arg)
                .collect();
            let mut sorted = args.clone();
            sorted.sort_unstable();
            prop_assert_eq!(args, sorted, "stream {} order", s);
        }
        prop_assert_eq!(
            log.overwritten as usize,
            all.len().saturating_sub(capacity)
        );
    }
}
