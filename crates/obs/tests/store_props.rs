//! Property tests for the campaign store's merge algebra.
//!
//! The store's whole design rests on three laws (see the module docs of
//! `rdsim_obs::store`): folding is **order-insensitive**, merging is
//! **associative and commutative** over disjoint run sets, and a summary
//! **round-trips through JSON bit-exactly** so checkpoint replay rebuilds
//! the identical store. The unit tests pin those laws on one fixture;
//! these properties hold them over arbitrary summary sets, arbitrary fold
//! orders and arbitrary split points — the shapes real campaigns produce
//! when workers finish out of order, shards merge, or a resume folds a
//! checkpoint back in.

use proptest::prelude::*;
use rdsim_obs::{CampaignStore, CellSample, Histogram, RunSummary};

/// Condition labels a summary may observe (fault cells plus a whole-run
/// cell; duplicates across summaries are the point — they must land in
/// the same aggregate regardless of arrival order).
const CONDITIONS: [&str; 6] = [
    "delay:05ms",
    "delay:25ms",
    "delay:50ms",
    "loss:02pct",
    "loss:05pct",
    "run:faulty",
];

const KINDS: [&str; 3] = ["training", "golden", "faulty"];

/// One raw summary spec drawn by proptest: (digest, wall_ns, cells as
/// 9-tuples of raw integers, histogram samples, a counter value).
type Spec = (u64, u64, Vec<Vec<u64>>, Vec<u64>, u64);

fn spec_strategy() -> impl Strategy<Value = Vec<Spec>> {
    proptest::collection::vec(
        (
            proptest::num::u64::ANY,
            0u64..1_000_000,
            proptest::collection::vec(proptest::collection::vec(0u64..1_000_000, 9), 0..5),
            // Full-range samples push histogram sums past 2^64, exercising
            // the u128 carry through fold, merge and JSON.
            proptest::collection::vec(proptest::num::u64::ANY, 0..6),
            0u64..1_000_000,
        ),
        1..25,
    )
}

/// Expands a spec into a summary with a key unique within the set
/// (subject/kind derived from the index, as a real roster would).
fn build(index: usize, spec: &Spec) -> RunSummary {
    let (digest, wall_ns, cells, hist_samples, counter) = spec;
    let mut s = RunSummary {
        scenario: "town05".to_owned(),
        subject: format!("S{:02}", index / KINDS.len()),
        kind: KINDS[index % KINDS.len()].to_owned(),
        seed: *digest ^ 0x5EED,
        digest: *digest,
        wall_ns: *wall_ns,
        ..RunSummary::default()
    };
    for raw in cells {
        let exposures = raw[1] % 1000;
        let ttc_samples = raw[4] % 10_000;
        s.cells.push(CellSample {
            condition: CONDITIONS[raw[0] as usize % CONDITIONS.len()].to_owned(),
            exposures,
            collided: raw[2] % (exposures + 1),
            collisions: raw[2] % 50,
            ttc_breaches: raw[3] % (ttc_samples + 1),
            ttc_samples,
            srr_reversals: raw[5] % 500,
            srr_rate_micro: raw[6] as i64 - 500_000,
            srr_runs: raw[7] % 2,
            fault_exposure_us: raw[8],
        });
    }
    if !hist_samples.is_empty() {
        let h = Histogram::new();
        for &v in hist_samples {
            h.record(v);
        }
        s.histograms
            .insert("session.frame_age_us".to_owned(), h.snapshot());
    }
    s.counters.insert("session.steps".to_owned(), *counter);
    s
}

fn summaries(specs: &[Spec]) -> Vec<RunSummary> {
    specs.iter().enumerate().map(|(i, s)| build(i, s)).collect()
}

fn folded(runs: &[RunSummary]) -> CampaignStore {
    let mut store = CampaignStore::new();
    for s in runs {
        assert!(store.fold(s), "keys are unique by construction");
    }
    store
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn shuffled(runs: &[RunSummary], seed: u64) -> Vec<RunSummary> {
    let mut out = runs.to_vec();
    let mut state = seed;
    for i in (1..out.len()).rev() {
        let j = (splitmix(&mut state) as usize) % (i + 1);
        out.swap(i, j);
    }
    out
}

proptest! {
    #[test]
    fn fold_order_never_changes_the_store(
        specs in spec_strategy(),
        order_seed in proptest::num::u64::ANY,
    ) {
        let runs = summaries(&specs);
        let reference = folded(&runs);
        let permuted = folded(&shuffled(&runs, order_seed));
        prop_assert_eq!(&permuted, &reference);
        prop_assert_eq!(permuted.fingerprint(), reference.fingerprint());
    }

    #[test]
    fn split_merge_is_commutative_and_equals_single_shot(
        specs in spec_strategy(),
        split_seed in proptest::num::u64::ANY,
    ) {
        let runs = summaries(&specs);
        let whole = folded(&runs);
        let split = (split_seed as usize) % (runs.len() + 1);
        let (a, b) = runs.split_at(split);
        let (left, right) = (folded(a), folded(b));

        let mut ab = left.clone();
        ab.merge(&right);
        let mut ba = right.clone();
        ba.merge(&left);
        prop_assert_eq!(&ab, &whole, "left ∪ right ≠ single-shot at split {}", split);
        prop_assert_eq!(&ba, &ab, "merge is not commutative at split {}", split);
        prop_assert_eq!(ba.fingerprint(), whole.fingerprint());
    }

    #[test]
    fn three_way_merge_is_associative(
        specs in spec_strategy(),
        cut_seed in proptest::num::u64::ANY,
    ) {
        let runs = summaries(&specs);
        let whole = folded(&runs);
        let i = (cut_seed as usize) % (runs.len() + 1);
        let j = i + (cut_seed >> 32) as usize % (runs.len() - i + 1);
        let (a, b, c) = (folded(&runs[..i]), folded(&runs[i..j]), folded(&runs[j..]));

        let mut left_first = a.clone();
        left_first.merge(&b);
        left_first.merge(&c);
        let mut right_first = b.clone();
        right_first.merge(&c);
        let mut outer = a.clone();
        outer.merge(&right_first);
        prop_assert_eq!(&left_first, &outer, "(a∪b)∪c ≠ a∪(b∪c) at cuts {}/{}", i, j);
        prop_assert_eq!(&left_first, &whole);
    }

    #[test]
    fn checkpoint_replay_rebuilds_the_store(
        specs in spec_strategy(),
        order_seed in proptest::num::u64::ANY,
    ) {
        // Round-trip every summary through its JSON checkpoint line, fold
        // the parsed copies in a different order, and refold duplicates —
        // exactly what a resume does. The store must come back identical.
        let runs = summaries(&specs);
        let reference = folded(&runs);
        let replayed: Vec<RunSummary> = shuffled(&runs, order_seed)
            .iter()
            .map(|s| {
                let line = s.to_json();
                let back = RunSummary::from_json(&line).expect("checkpoint line parses");
                assert_eq!(&back, s, "JSON round-trip must be bit-exact");
                back
            })
            .collect();
        let mut store = folded(&replayed);
        for s in &replayed {
            prop_assert!(!store.fold(s), "refolding a known key must be a no-op");
        }
        prop_assert_eq!(&store, &reference);
        prop_assert_eq!(store.fingerprint(), reference.fingerprint());
    }
}
