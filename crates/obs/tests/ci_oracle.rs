//! Brute-force oracle for the Wilson score interval.
//!
//! The Wilson interval is *defined* as the inversion of the score test:
//! the set of true proportions `p` for which the observed `k` of `n` is
//! not rejected at level `z`, i.e. `|p̂ − p| ≤ z·√(p(1−p)/n)`. The closed
//! form in `rdsim_obs::ci` is algebra on that definition; here a grid scan
//! recovers the acceptance region directly from the definition and pins
//! the closed form's bounds against it at every small `n` — the regime
//! the risk surface actually reports (a handful of fault windows per
//! cell).

use proptest::prelude::*;
use rdsim_obs::{wilson_interval, Z_95, Z_99};

/// Grid resolution of the brute-force scan (bounds are recovered to
/// within one step).
const STEPS: u64 = 20_000;
const STEP: f64 = 1.0 / STEPS as f64;

/// Scans `p` over `[0, 1]` and returns the smallest and largest grid
/// points the score test accepts for `k` of `n`.
fn brute_force_bounds(k: u64, n: u64, z: f64) -> (f64, f64) {
    let p_hat = k as f64 / n as f64;
    let mut lo = f64::NAN;
    let mut hi = f64::NAN;
    for i in 0..=STEPS {
        let p = i as f64 * STEP;
        let se = (p * (1.0 - p) / n as f64).sqrt();
        if (p_hat - p).abs() <= z * se {
            if lo.is_nan() {
                lo = p;
            }
            hi = p;
        }
    }
    assert!(!lo.is_nan(), "p = p̂ is always accepted");
    (lo, hi)
}

#[test]
fn closed_form_matches_the_score_test_inversion_at_small_n() {
    for n in 1..=25u64 {
        for k in 0..=n {
            for z in [Z_95, Z_99] {
                let ci = wilson_interval(k, n, z);
                let (lo, hi) = brute_force_bounds(k, n, z);
                // The acceptance region is contiguous, so each brute bound
                // is within one grid step of the true inversion bound.
                assert!(
                    (ci.lo - lo).abs() <= STEP + 1e-9,
                    "lo mismatch at k={k} n={n} z={z}: closed {} vs brute {lo}",
                    ci.lo
                );
                assert!(
                    (ci.hi - hi).abs() <= STEP + 1e-9,
                    "hi mismatch at k={k} n={n} z={z}: closed {} vs brute {hi}",
                    ci.hi
                );
            }
        }
    }
}

#[test]
fn edge_counts_pin_to_exact_bounds() {
    // k = 0 knows p could be 0 exactly; k = n knows p could be 1 exactly.
    // The closed form pins these analytically (no sqrt rounding allowed).
    for n in 1..=50u64 {
        let none = wilson_interval(0, n, Z_95);
        assert_eq!(none.lo, 0.0, "n={n}");
        assert!(none.hi > 0.0, "k=0 must not claim certainty (n={n})");
        let all = wilson_interval(n, n, Z_95);
        assert_eq!(all.hi, 1.0, "n={n}");
        assert!(all.lo < 1.0, "n={n}");
    }
}

proptest! {
    #[test]
    fn interval_is_sane_at_any_count(
        n in 1u64..5_000,
        k_seed in proptest::num::u64::ANY,
        z_99 in proptest::bool::ANY,
    ) {
        let k = k_seed % (n + 1);
        let z = if z_99 { Z_99 } else { Z_95 };
        let ci = wilson_interval(k, n, z);
        prop_assert!(ci.lo <= ci.p_hat && ci.p_hat <= ci.hi, "k={} n={}", k, n);
        prop_assert!((0.0..=1.0).contains(&ci.lo));
        prop_assert!((0.0..=1.0).contains(&ci.hi));
        prop_assert!(ci.half_width() > 0.0, "a finite sample never has zero width");
    }

    #[test]
    fn bounds_are_monotone_in_successes(
        n in 1u64..2_000,
        k_seed in proptest::num::u64::ANY,
    ) {
        // One more observed success can only move the interval up.
        let k = k_seed % n;
        let a = wilson_interval(k, n, Z_95);
        let b = wilson_interval(k + 1, n, Z_95);
        prop_assert!(b.lo >= a.lo, "lo went down: k={} n={}", k, n);
        prop_assert!(b.hi >= a.hi, "hi went down: k={} n={}", k, n);
    }

    #[test]
    fn higher_confidence_never_narrows(
        n in 1u64..2_000,
        k_seed in proptest::num::u64::ANY,
    ) {
        let k = k_seed % (n + 1);
        let ci95 = wilson_interval(k, n, Z_95);
        let ci99 = wilson_interval(k, n, Z_99);
        prop_assert!(ci99.lo <= ci95.lo && ci95.hi <= ci99.hi, "k={} n={}", k, n);
    }
}
