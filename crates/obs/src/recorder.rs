//! The registry (owner) and recorder (handle) pair.
//!
//! A [`Registry`] is created per run by whoever owns the run (the campaign
//! runner, a test, a bench). Components receive a [`Recorder`] — either a
//! live handle into that registry or the null recorder — as an explicit
//! constructor/config argument. Nothing in this crate is reachable through
//! a global or thread-local, so a component can only ever write telemetry
//! into the run that owns it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::Event;
use crate::hist::Histogram;
use crate::metrics::{Counter, Gauge};
use crate::telemetry::RunTelemetry;

/// Default cap on retained structured events per run. Beyond this, events
/// are counted in `events_dropped` instead of stored, bounding memory for
/// pathological long runs.
pub const DEFAULT_EVENT_CAPACITY: usize = 16_384;

#[derive(Debug)]
pub(crate) struct Inner {
    start: Instant,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    events: Mutex<Vec<Event>>,
    events_dropped: AtomicU64,
    event_capacity: usize,
}

impl Inner {
    fn new(event_capacity: usize) -> Self {
        Self {
            start: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            events: Mutex::new(Vec::new()),
            events_dropped: AtomicU64::new(0),
            event_capacity,
        }
    }

    fn wall_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

/// Owns every instrument for one run. Create one per run, hand out
/// [`Recorder`]s via [`Registry::recorder`], then read the result with
/// [`Registry::snapshot`].
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates a registry with the default event capacity.
    pub fn new() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Creates a registry retaining at most `capacity` structured events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Inner::new(capacity)),
        }
    }

    /// A live recorder writing into this registry.
    pub fn recorder(&self) -> Recorder {
        Recorder {
            inner: Some(Arc::clone(&self.inner)),
        }
    }

    /// Snapshots every instrument into a serializable [`RunTelemetry`].
    pub fn snapshot(&self) -> RunTelemetry {
        let inner = &self.inner;
        let counters = inner
            .counters
            .lock()
            .expect("obs counter map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .expect("obs gauge map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .expect("obs histogram map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let events = inner.events.lock().expect("obs event log poisoned").clone();
        RunTelemetry {
            counters,
            gauges,
            histograms,
            events,
            events_dropped: inner.events_dropped.load(Ordering::Relaxed),
            wall_elapsed_ns: inner.wall_ns(),
        }
    }
}

/// The handle components record through. Clone freely; all clones of a
/// live recorder share the same registry. [`Recorder::null`] (also the
/// `Default`) disables recording: instrument handles it returns are
/// detached-but-functional, events and spans are no-ops, and the owning
/// run's [`RunTelemetry`] stays empty.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// The disabled recorder.
    pub fn null() -> Self {
        Self { inner: None }
    }

    /// True when this recorder writes into a registry.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Wall-clock nanoseconds since the registry was created (0 when null).
    #[inline]
    pub fn wall_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.wall_ns(),
            None => 0,
        }
    }

    /// Returns the named counter, creating it on first use. On a null
    /// recorder the counter still counts (callers may read it back as
    /// their own statistic) but is not part of any telemetry snapshot.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner
                .counters
                .lock()
                .expect("obs counter map poisoned")
                .entry(name.to_owned())
                .or_default()
                .clone(),
            None => Counter::new(),
        }
    }

    /// Returns the named gauge, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner
                .gauges
                .lock()
                .expect("obs gauge map poisoned")
                .entry(name.to_owned())
                .or_default()
                .clone(),
            None => Gauge::new(),
        }
    }

    /// Returns the named histogram, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match &self.inner {
            Some(inner) => Arc::clone(
                inner
                    .histograms
                    .lock()
                    .expect("obs histogram map poisoned")
                    .entry(name.to_owned())
                    .or_insert_with(|| Arc::new(Histogram::new())),
            ),
            None => Arc::new(Histogram::new()),
        }
    }

    /// Records one histogram sample by name. Convenience for cold paths;
    /// hot paths should hold the handle from [`Recorder::histogram`].
    #[inline]
    pub fn observe(&self, name: &str, value: u64) {
        if self.inner.is_some() {
            self.histogram(name).record(value);
        }
    }

    /// Appends a structured event stamped with the given sim-time and the
    /// current wall clock. No-op on a null recorder.
    pub fn event(&self, name: &str, sim_us: u64, note: impl Into<String>) {
        let Some(inner) = &self.inner else { return };
        let wall_ns = inner.wall_ns();
        let mut events = inner.events.lock().expect("obs event log poisoned");
        if events.len() >= inner.event_capacity {
            inner.events_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(Event {
            name: name.to_owned(),
            sim_us,
            wall_ns,
            note: note.into(),
        });
    }

    /// Starts a wall-clock span; when the returned guard drops, the
    /// elapsed nanoseconds are recorded into the named histogram. On a
    /// null recorder this never reads the clock.
    #[inline]
    pub fn span(&self, name: &str) -> Span {
        match self.inner {
            Some(_) => Span {
                target: Some((self.histogram(name), Instant::now())),
            },
            None => Span { target: None },
        }
    }
}

/// RAII timing guard returned by [`Recorder::span`].
#[derive(Debug)]
pub struct Span {
    target: Option<(Arc<Histogram>, Instant)>,
}

impl Span {
    /// Ends the span early (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.target.take() {
            hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_recorder_snapshots_instruments() {
        let registry = Registry::new();
        let rec = registry.recorder();
        assert!(rec.enabled());
        rec.counter("a.count").add(3);
        rec.counter("a.count").inc();
        rec.gauge("a.gauge").set(2.5);
        rec.observe("a.hist", 10);
        rec.event("a.start", 1_000, "hello");
        let t = registry.snapshot();
        assert_eq!(t.counters.get("a.count"), Some(&4));
        assert_eq!(t.gauges.get("a.gauge"), Some(&2.5));
        assert_eq!(t.histograms.get("a.hist").map(|h| h.count), Some(1));
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].name, "a.start");
        assert_eq!(t.events[0].sim_us, 1_000);
    }

    #[test]
    fn null_recorder_counts_but_leaves_telemetry_empty() {
        let rec = Recorder::null();
        assert!(!rec.enabled());
        let c = rec.counter("x");
        c.add(7);
        assert_eq!(c.get(), 7, "detached counters must still function");
        rec.observe("h", 5);
        rec.event("e", 1, "");
        rec.span("s").finish();
        assert_eq!(rec.wall_ns(), 0);
        // No registry exists, so nothing can be snapshotted; the contract
        // is exercised end-to-end in the session tests (empty RunTelemetry).
    }

    #[test]
    fn event_capacity_is_enforced() {
        let registry = Registry::with_event_capacity(2);
        let rec = registry.recorder();
        for i in 0..5 {
            rec.event("e", i, "");
        }
        let t = registry.snapshot();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events_dropped, 3);
    }

    #[test]
    fn span_records_into_histogram() {
        let registry = Registry::new();
        let rec = registry.recorder();
        rec.span("timed").finish();
        let t = registry.snapshot();
        assert_eq!(t.histograms.get("timed").map(|h| h.count), Some(1));
    }
}
