//! Live campaign progress for `repro --progress`.
//!
//! The meter is deliberately *passive*: it holds counts and an EWMA, and
//! formats a one-line status on demand. The caller owns the clock (every
//! method takes or receives explicit nanoseconds), which keeps the type
//! deterministic and unit-testable — and keeps wall time out of every
//! code path that feeds digests. Rendering goes to stderr so it never
//! contaminates the byte-diffed stdout reports.

use std::fmt::Write as _;

/// Smoothing factor for the per-run wall-time EWMA (≈ the last five runs
/// dominate the ETA).
const EWMA_ALPHA: f64 = 0.2;

/// Per-worker completion statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerStat {
    /// Runs this worker completed.
    pub runs: u64,
    /// Nanoseconds this worker spent executing runs.
    pub busy_ns: u64,
}

/// Streaming progress state for one campaign: runs done/total, a
/// wall-clock EWMA for the ETA, the rolling collision rate, and
/// per-worker utilization.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressMeter {
    total: u64,
    done: u64,
    collided_runs: u64,
    ewma_run_ns: f64,
    workers: Vec<WorkerStat>,
}

impl ProgressMeter {
    /// A meter for `total` runs on `workers` workers.
    pub fn new(total: u64, workers: usize) -> Self {
        ProgressMeter {
            total,
            done: 0,
            collided_runs: 0,
            ewma_run_ns: 0.0,
            workers: vec![WorkerStat::default(); workers.max(1)],
        }
    }

    /// Records one completed run: which worker ran it, how long it took,
    /// and whether it collided.
    pub fn on_run(&mut self, worker: usize, wall_ns: u64, collided: bool) {
        self.done += 1;
        self.collided_runs += u64::from(collided);
        self.ewma_run_ns = if self.done == 1 {
            wall_ns as f64
        } else {
            EWMA_ALPHA * wall_ns as f64 + (1.0 - EWMA_ALPHA) * self.ewma_run_ns
        };
        if let Some(w) = self.workers.get_mut(worker) {
            w.runs += 1;
            w.busy_ns += wall_ns;
        }
    }

    /// Runs completed so far.
    pub fn done(&self) -> u64 {
        self.done
    }

    /// Total runs expected.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Runs that ended with at least one collision.
    pub fn collided_runs(&self) -> u64 {
        self.collided_runs
    }

    /// Per-worker stats.
    pub fn workers(&self) -> &[WorkerStat] {
        &self.workers
    }

    /// Estimated nanoseconds to completion, from the EWMA of per-run wall
    /// time spread across the workers. `None` before the first run lands.
    pub fn eta_ns(&self) -> Option<u64> {
        if self.done == 0 {
            return None;
        }
        let remaining = self.total.saturating_sub(self.done) as f64;
        Some((remaining * self.ewma_run_ns / self.workers.len() as f64) as u64)
    }

    /// Mean worker utilization over `elapsed_ns` of campaign wall time:
    /// busy time across workers / (elapsed × workers), clamped to 1.
    pub fn utilization(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            return 0.0;
        }
        let busy: u64 = self.workers.iter().map(|w| w.busy_ns).sum();
        (busy as f64 / (elapsed_ns as f64 * self.workers.len() as f64)).min(1.0)
    }

    /// Formats the one-line status for `elapsed_ns` of campaign wall
    /// time, e.g.:
    ///
    /// ```text
    /// [ 12/36]  33%  eta 41.0s  collisions 2/12 (16.7%)  util 87%  4 workers
    /// ```
    pub fn line(&self, elapsed_ns: u64) -> String {
        let mut out = String::with_capacity(96);
        let pct = if self.total > 0 {
            self.done as f64 * 100.0 / self.total as f64
        } else {
            100.0
        };
        let _ = write!(out, "[{:>3}/{}] {:>3.0}%", self.done, self.total, pct);
        match self.eta_ns() {
            Some(eta) if self.done < self.total => {
                let _ = write!(out, "  eta {:.1}s", eta as f64 * 1e-9);
            }
            _ => {
                let _ = write!(out, "  {:.1}s elapsed", elapsed_ns as f64 * 1e-9);
            }
        }
        let rate = if self.done > 0 {
            self.collided_runs as f64 * 100.0 / self.done as f64
        } else {
            0.0
        };
        let _ = write!(
            out,
            "  collisions {}/{} ({rate:.1}%)  util {:.0}%  {} worker(s)",
            self.collided_runs,
            self.done,
            self.utilization(elapsed_ns) * 100.0,
            self.workers.len()
        );
        out
    }

    /// Renders the status line to stderr, overwriting the previous one
    /// (`\r`, no newline). Call [`finish_stderr`](Self::finish_stderr)
    /// once at the end to terminate the line.
    pub fn render_stderr(&self, elapsed_ns: u64) {
        eprint!("\r{}", self.line(elapsed_ns));
    }

    /// Terminates the in-place stderr line with a newline.
    pub fn finish_stderr(&self, elapsed_ns: u64) {
        eprintln!("\r{}", self.line(elapsed_ns));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_collision_rate() {
        let mut m = ProgressMeter::new(10, 2);
        m.on_run(0, 1_000_000_000, false);
        m.on_run(1, 1_000_000_000, true);
        m.on_run(0, 1_000_000_000, false);
        assert_eq!(m.done(), 3);
        assert_eq!(m.collided_runs(), 1);
        assert_eq!(m.workers()[0].runs, 2);
        assert_eq!(m.workers()[1].runs, 1);
        let line = m.line(2_000_000_000);
        assert!(line.contains("[  3/10]"), "{line}");
        assert!(line.contains("collisions 1/3 (33.3%)"), "{line}");
    }

    #[test]
    fn eta_tracks_the_ewma() {
        let mut m = ProgressMeter::new(4, 1);
        assert_eq!(m.eta_ns(), None);
        m.on_run(0, 2_000_000_000, false);
        // 3 runs left at ~2 s each on one worker.
        let eta = m.eta_ns().unwrap();
        assert_eq!(eta, 6_000_000_000);
        // Faster runs pull the estimate down monotonically.
        m.on_run(0, 1_000_000_000, false);
        assert!(m.eta_ns().unwrap() < 4_000_000_000);
    }

    #[test]
    fn utilization_is_bounded() {
        let mut m = ProgressMeter::new(2, 2);
        m.on_run(0, 500, false);
        m.on_run(1, 500, false);
        assert_eq!(m.utilization(0), 0.0);
        assert!((m.utilization(500) - 1.0).abs() < 1e-12);
        assert!((m.utilization(1000) - 0.5).abs() < 1e-12);
        assert!(m.utilization(100) <= 1.0);
    }

    #[test]
    fn completed_meter_reports_elapsed_not_eta() {
        let mut m = ProgressMeter::new(1, 1);
        m.on_run(0, 1_000_000_000, false);
        let line = m.line(1_500_000_000);
        assert!(line.contains("1.5s elapsed"), "{line}");
        assert!(!line.contains("eta"), "{line}");
    }

    #[test]
    fn out_of_range_worker_ids_are_tolerated() {
        let mut m = ProgressMeter::new(2, 1);
        m.on_run(7, 100, true);
        assert_eq!(m.done(), 1);
        assert_eq!(m.workers()[0].runs, 0);
    }
}
