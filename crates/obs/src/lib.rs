//! # rdsim-obs — zero-dependency telemetry for the rdsim stack
//!
//! This crate provides the observability primitives used across the
//! simulator, network emulator, session engine, and campaign runner:
//!
//! * [`Counter`] / [`Gauge`] — cheap atomic scalars.
//! * [`Histogram`] — fixed-bucket base-2 logarithmic histogram with
//!   `p50 / p90 / p99 / max` read-out, mergeable across runs.
//! * [`Event`] — structured events stamped with **sim-time** (deterministic,
//!   reproducible across identical seeds) *and* **wall-time** (diagnostic).
//! * [`Registry`] — owns all instruments for one run; snapshots into a
//!   serializable [`RunTelemetry`].
//! * [`Recorder`] — the handle threaded *explicitly* through the simulation
//!   code. There is deliberately **no global/thread-local state**: a
//!   component can only record into a registry it was handed, which keeps
//!   runs deterministic and makes parallel campaign execution trivially
//!   safe. [`Recorder::null`] is the disabled variant whose operations
//!   compile down to a branch on an `Option`.
//! * [`Tracer`] / [`TraceRing`] — causal per-frame/per-command tracing: a
//!   [`TraceId`] minted at each artifact's origin, span events for every
//!   pipeline hop, and an always-on bounded overwrite-oldest flight
//!   recorder. Snapshots ([`TraceLog`]) window around incidents and
//!   export as Chrome/Perfetto `trace_event` JSON
//!   ([`chrome_trace_json`]).
//! * [`Timeline`] — time-resolved safety/QoS windows: fixed-width
//!   sim-time buckets of integer-only aggregates (glass-to-glass latency
//!   decomposition, per-direction link counters, min gated TTC, steering
//!   reversals, fault bitmask), mergeable and deterministically
//!   serializable — the substrate of incident forensics dossiers.
//!
//! The crate depends on nothing but `std` — not even other workspace
//! crates — so every layer can use it without dependency cycles.
//!
//! ## Conventions
//!
//! * Instrument names are dot-separated paths, e.g.
//!   `"session.frame_age_us"` or `"netem.uplink.dropped"`.
//! * Histogram samples are `u64`s in the unit named by the instrument
//!   (`_us` for microseconds, `_ns` for nanoseconds, `_bytes` for sizes).
//! * Sim-time stamps are microseconds since run start (`SimTime::as_micros`
//!   in `rdsim-units`, passed as a plain `u64` to keep this crate
//!   dependency-free).

#[cfg(feature = "alloc-count")]
mod alloc_count;
mod chrome;
mod ci;
mod event;
mod hist;
mod json;
mod metrics;
mod progress;
mod recorder;
mod ring;
mod store;
mod telemetry;
mod timeline;
mod trace;

#[cfg(feature = "alloc-count")]
pub use alloc_count::{alloc_counts, AllocCounts, CountingAlloc};
pub use chrome::chrome_trace_json;
pub use ci::{wilson_interval, BinomialCi, Z_95, Z_99};
pub use event::Event;
pub use hist::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
pub use json::{write_f64, write_json_string, JsonError, JsonValue};
pub use metrics::{Counter, Gauge};
pub use progress::{ProgressMeter, WorkerStat};
pub use recorder::{Recorder, Registry, Span};
pub use ring::TraceRing;
pub use store::{
    to_micro, CampaignStore, CellAggregate, CellSample, RiskPoint, RunKey, RunSummary, MICRO,
};
pub use telemetry::{deterministic_instrument, RunTelemetry, FLEET_PREFIX};
pub use timeline::{Timeline, TimelineWindow, DEFAULT_WINDOW_US};
pub use trace::{
    ArtifactKind, TraceEvent, TraceId, TraceLog, TraceStage, Tracer, DEFAULT_TRACE_CAPACITY,
};
