//! Counting global allocator for the allocation-regression harness.
//!
//! [`CountingAlloc`] wraps the system allocator and counts every
//! allocation event (`alloc`, `alloc_zeroed`, `realloc`) plus the bytes
//! requested, in process-wide relaxed atomics. It is deliberately **not**
//! installed by this crate: a test or bench binary opts in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: rdsim_obs::CountingAlloc = rdsim_obs::CountingAlloc;
//! ```
//!
//! which scopes the (tiny) bookkeeping overhead to that one binary. The
//! whole module is behind the `alloc-count` cargo feature so production
//! builds never even compile it.
//!
//! Counters are global to the process, so measurements are only
//! meaningful on a single thread with no concurrent allocator traffic —
//! exactly the situation in `crates/core/tests/alloc_regression.rs` and
//! `cargo bench -p rdsim-bench --bench alloc`. Deallocations are *not*
//! counted: the regression gate is "no new heap memory is requested per
//! steady-state step", and frees of warm-up memory are irrelevant to it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] that forwards to [`System`] and counts allocation
/// events and requested bytes. Install with `#[global_allocator]` in the
/// measuring binary; read with [`alloc_counts`] / delta with
/// [`AllocCounts::since`].
pub struct CountingAlloc;

// SAFETY: pure forwarding to `System`; the counter updates have no
// allocator-visible side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(new_size as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// A point-in-time reading of the process-wide allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocCounts {
    /// Allocation events (`alloc` + `alloc_zeroed` + `realloc`) so far.
    pub allocs: u64,
    /// Bytes requested by those events.
    pub bytes: u64,
}

impl AllocCounts {
    /// Counters accumulated since an earlier reading.
    #[must_use]
    pub fn since(self, earlier: AllocCounts) -> AllocCounts {
        AllocCounts {
            allocs: self.allocs - earlier.allocs,
            bytes: self.bytes - earlier.bytes,
        }
    }
}

/// Reads the current allocation counters. Monotone; take two readings
/// and [`AllocCounts::since`] them to measure a region.
#[must_use]
pub fn alloc_counts() -> AllocCounts {
    AllocCounts {
        allocs: ALLOCS.load(Relaxed),
        bytes: BYTES.load(Relaxed),
    }
}
