//! Binomial proportion confidence intervals (Wilson score).
//!
//! Campaign risk surfaces report `P(collision)` per condition cell. At
//! population scale collisions are rare events, so the naive Wald interval
//! `p̂ ± z·√(p̂(1−p̂)/n)` degenerates (zero width at `k = 0`, escapes
//! `[0, 1]` near the edges). The Wilson score interval is the inversion of
//! the score test — the set of `p` for which the observed `k` of `n` is
//! not rejected at level `z` — and behaves well at the extremes the
//! observatory lives in; `crates/obs/tests/ci_oracle.rs` pins the closed
//! form against a brute-force inversion at small `n`.

/// Two-sided 95 % normal quantile (`z` for a 95 % Wilson interval).
pub const Z_95: f64 = 1.959_963_984_540_054;

/// Two-sided 99 % normal quantile.
pub const Z_99: f64 = 2.575_829_303_548_901;

/// A binomial proportion estimate with its confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinomialCi {
    /// Successes observed.
    pub successes: u64,
    /// Trials observed.
    pub trials: u64,
    /// The point estimate `successes / trials` (0 when `trials == 0`).
    pub p_hat: f64,
    /// Lower confidence bound, in `[0, 1]`.
    pub lo: f64,
    /// Upper confidence bound, in `[0, 1]`.
    pub hi: f64,
}

impl BinomialCi {
    /// Interval half-width (a rough "how well do we know this" scalar).
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// The Wilson score interval for `successes` out of `trials` at normal
/// quantile `z` (use [`Z_95`] / [`Z_99`]).
///
/// With `n = trials`, `p̂ = k/n` and `z² = zz`:
///
/// ```text
/// centre = (p̂ + zz/2n) / (1 + zz/n)
/// width  = z·√(p̂(1−p̂)/n + zz/4n²) / (1 + zz/n)
/// ```
///
/// `trials == 0` yields the vacuous interval `[0, 1]` with `p_hat = 0` —
/// an empty cell knows nothing.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> BinomialCi {
    debug_assert!(successes <= trials, "successes must not exceed trials");
    if trials == 0 {
        return BinomialCi {
            successes,
            trials,
            p_hat: 0.0,
            lo: 0.0,
            hi: 1.0,
        };
    }
    let n = trials as f64;
    let p_hat = successes as f64 / n;
    let zz = z * z;
    let denom = 1.0 + zz / n;
    let centre = (p_hat + zz / (2.0 * n)) / denom;
    let width = z * (p_hat * (1.0 - p_hat) / n + zz / (4.0 * n * n)).sqrt() / denom;
    // At the edges the bound is analytically exact (`centre == width` when
    // k = 0, symmetrically at k = n); pin it so rounding in `sqrt` cannot
    // leave an epsilon that breaks `lo <= p_hat <= hi`.
    let lo = if successes == 0 {
        0.0
    } else {
        (centre - width).clamp(0.0, 1.0)
    };
    let hi = if successes == trials {
        1.0
    } else {
        (centre + width).clamp(0.0, 1.0)
    };
    BinomialCi {
        successes,
        trials,
        p_hat,
        lo,
        hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cell_is_the_vacuous_interval() {
        let ci = wilson_interval(0, 0, Z_95);
        assert_eq!((ci.lo, ci.hi, ci.p_hat), (0.0, 1.0, 0.0));
    }

    #[test]
    fn interval_contains_the_point_estimate() {
        for (k, n) in [(0u64, 10u64), (1, 10), (5, 10), (10, 10), (3, 1000)] {
            let ci = wilson_interval(k, n, Z_95);
            assert!(ci.lo <= ci.p_hat && ci.p_hat <= ci.hi, "k={k} n={n}");
            assert!((0.0..=1.0).contains(&ci.lo) && (0.0..=1.0).contains(&ci.hi));
        }
    }

    #[test]
    fn zero_successes_still_have_positive_upper_bound() {
        // The rare-event case the observatory exists for: k = 0 must not
        // claim certainty (the Wald interval would).
        let ci = wilson_interval(0, 100, Z_95);
        assert_eq!(ci.lo, 0.0);
        assert!(ci.hi > 0.0 && ci.hi < 0.06, "hi = {}", ci.hi);
    }

    #[test]
    fn interval_narrows_with_more_trials() {
        let small = wilson_interval(5, 50, Z_95);
        let large = wilson_interval(500, 5000, Z_95);
        assert!(large.half_width() < small.half_width());
    }

    #[test]
    fn higher_confidence_widens_the_interval() {
        let ci95 = wilson_interval(5, 50, Z_95);
        let ci99 = wilson_interval(5, 50, Z_99);
        assert!(ci99.lo < ci95.lo && ci99.hi > ci95.hi);
    }

    #[test]
    fn symmetric_around_half_for_symmetric_counts() {
        let ci = wilson_interval(50, 100, Z_95);
        assert!((ci.p_hat - 0.5).abs() < 1e-12);
        assert!(((ci.hi - 0.5) - (0.5 - ci.lo)).abs() < 1e-12);
    }
}
