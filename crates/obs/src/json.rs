//! Minimal JSON document model: parse and emit, dependency-free.
//!
//! The observatory's checkpoint/resume path needs to *read back* what it
//! wrote (the telemetry layer so far only ever emitted JSON), and this
//! crate deliberately has no dependencies — so here is the smallest JSON
//! that round-trips exactly:
//!
//! * Numbers are kept as their **raw token** (`JsonValue::Num(String)`),
//!   never eagerly converted to `f64`. Callers pick the interpretation
//!   (`as_u64`, `as_u128`, `as_f64`), so a `u64` run digest or a `u128`
//!   histogram sum survives the trip bit for bit — the property the
//!   checkpoint-equals-single-shot digest guarantee rests on.
//! * Object key order is preserved as parsed/built; the writers in this
//!   workspace always emit sorted or fixed-order keys, so emission is
//!   deterministic.
//!
//! `f64` round-tripping: Rust's `Display` for floats prints the shortest
//! string that parses back to the identical bits, and [`write_f64`] uses
//! exactly that, so `parse(emit(x)).as_f64() == x` for every finite `x`.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token so integer precision is never lost.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in parse/build order.
    Obj(Vec<(String, JsonValue)>),
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's fields, or `None` for non-objects.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's elements, or `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// String content, or `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean content, or `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, exact (`None` for non-numbers or non-`u64`s).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The number as `u128`, exact.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            JsonValue::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The number as `i64`, exact.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The number as `i128`, exact.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            JsonValue::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64` (round-trip exact for shortest-form tokens).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// Serializes back to compact JSON (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Appends this value's compact JSON to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(tok) => out.push_str(tok),
            JsonValue::Str(s) => write_json_string(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes) to `out`.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` in shortest round-trip form (`null` when not
/// finite, mirroring the telemetry writer's convention).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &'static str, msg: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => {
                self.literal("true", "expected 'true'")?;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') => {
                self.literal("false", "expected 'false'")?;
                Ok(JsonValue::Bool(false))
            }
            Some(b'n') => {
                self.literal("null", "expected 'null'")?;
                Ok(JsonValue::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.literal("\\u", "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 leaves pos just past the 4 digits and the
                            // shared increment below expects one pending byte.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing at
                    // char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected hex digit")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            saw_digit = true;
            self.pos += 1;
        }
        if !saw_digit {
            return Err(self.err("expected digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        Ok(JsonValue::Num(tok.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc = r#"{"a": 1, "b": [true, null, -2.5e3], "c": "x\ny", "d": {"e": 0}}"#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], JsonValue::Null);
        assert_eq!(arr[2].as_f64(), Some(-2500.0));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d").unwrap().get("e").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn big_integers_survive_exactly() {
        let doc = format!("{{\"u\":{},\"w\":{}}}", u64::MAX, u128::MAX);
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("u").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("w").unwrap().as_u128(), Some(u128::MAX));
        // f64 interpretation would have lost bits; the raw token did not.
        assert_eq!(v.to_json(), doc);
    }

    #[test]
    fn f64_round_trip_is_exact() {
        for x in [0.1, 1.0 / 3.0, 6.02e23, 5e-324, f64::MAX, 0.0] {
            let mut s = String::new();
            write_f64(&mut s, x);
            let v = JsonValue::parse(&s).unwrap();
            assert_eq!(v.as_f64().unwrap().to_bits(), x.to_bits(), "token {s}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}f — π 🚗";
        let mut s = String::new();
        write_json_string(&mut s, original);
        let v = JsonValue::parse(&s).unwrap();
        assert_eq!(v.as_str(), Some(original));
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        let v = JsonValue::parse(r#""🚗""#).unwrap();
        assert_eq!(v.as_str(), Some("🚗"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "- 1",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn emission_is_compact_and_reparses() {
        let v = JsonValue::Obj(vec![
            ("k".into(), JsonValue::Arr(vec![JsonValue::Num("7".into())])),
            ("s".into(), JsonValue::Str("v".into())),
        ]);
        let json = v.to_json();
        assert_eq!(json, r#"{"k":[7],"s":"v"}"#);
        assert_eq!(JsonValue::parse(&json).unwrap(), v);
    }
}
