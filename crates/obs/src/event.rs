//! Structured run events.

/// A single structured event emitted during a run.
///
/// `sim_us` is the simulation clock (microseconds since run start) — it is
/// the *deterministic* timestamp: two runs with identical seeds produce
/// identical `(name, sim_us, note)` streams. `wall_ns` is the host
/// monotonic clock relative to registry creation, useful for diagnosing
/// real-time behaviour but excluded from any determinism contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Dot-separated event name, e.g. `"netem.fault.injected"`.
    pub name: String,
    /// Simulation time in microseconds since run start (deterministic).
    pub sim_us: u64,
    /// Wall-clock nanoseconds since the owning registry was created.
    pub wall_ns: u64,
    /// Free-form detail, e.g. the injected `NetemConfig` rendered as text.
    pub note: String,
}

impl Event {
    /// The deterministic portion of the event — everything except the
    /// wall clock. Equal seeds must yield equal keys, in order.
    pub fn deterministic_key(&self) -> (String, u64, String) {
        (self.name.clone(), self.sim_us, self.note.clone())
    }
}
