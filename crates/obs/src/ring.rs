//! The flight-recorder ring buffer backing [`crate::Tracer`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::trace::TraceEvent;

/// A bounded overwrite-oldest buffer of [`TraceEvent`]s.
///
/// The ring is the "flight recorder": it is always on, holds the most
/// recent `capacity` events, and counts (rather than blocks on) everything
/// it had to overwrite. Writers share the ring through an `Arc` held by
/// cloned [`crate::Tracer`] handles.
///
/// Pushes serialize through a mutex rather than a lock-free queue: trace
/// events are produced by one session thread at a time in this codebase,
/// so the lock is uncontended and the critical section is a bounds check
/// plus one 32-byte store. The overwrite counter is an atomic so readers
/// can poll it without taking the lock.
#[derive(Debug)]
pub struct TraceRing {
    inner: Mutex<RingBuf>,
    overwritten: AtomicU64,
}

#[derive(Debug)]
struct RingBuf {
    /// Storage; grows up to `capacity` and then becomes a circular buffer.
    buf: Vec<TraceEvent>,
    /// Index of the oldest entry once the buffer has wrapped.
    head: usize,
    capacity: usize,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    /// Storage is allocated lazily as events arrive, so short runs never
    /// pay for the full capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRing {
            inner: Mutex::new(RingBuf {
                buf: Vec::new(),
                head: 0,
                capacity: capacity.max(1),
            }),
            overwritten: AtomicU64::new(0),
        }
    }

    /// Appends an event, overwriting the oldest one when full.
    pub fn push(&self, event: TraceEvent) {
        let mut ring = self.inner.lock().expect("trace ring poisoned");
        if ring.buf.len() < ring.capacity {
            ring.buf.push(event);
        } else {
            let head = ring.head;
            ring.buf[head] = event;
            ring.head = (head + 1) % ring.capacity;
            self.overwritten.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Grows the backing storage ahead of time for `additional` more
    /// events (clamped to the *remaining* room below the ring bound —
    /// capacity minus what is already stored, not the bound itself), so a
    /// run of known length can record into the ring without ever
    /// allocating mid-step.
    pub fn reserve(&self, additional: usize) {
        let mut ring = self.inner.lock().expect("trace ring poisoned");
        let room = ring.capacity - ring.buf.len();
        let want = additional.min(room);
        ring.buf.reserve_exact(want);
    }

    /// Events overwritten (lost to the bound) so far.
    pub fn overwritten(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed)
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("trace ring poisoned").capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace ring poisoned").buf.len()
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        self.snapshot_into(&mut out);
        out
    }

    /// Appends the retained events, oldest first, into a caller-owned
    /// buffer — the forensics-export path, which reuses one buffer across
    /// runs so repeated snapshots stay outside the allocation gate.
    pub fn snapshot_into(&self, out: &mut Vec<TraceEvent>) {
        let ring = self.inner.lock().expect("trace ring poisoned");
        out.reserve(ring.buf.len());
        out.extend_from_slice(&ring.buf[ring.head..]);
        out.extend_from_slice(&ring.buf[..ring.head]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceId, TraceStage};

    fn ev(n: u64) -> TraceEvent {
        TraceEvent {
            id: TraceId::frame(n),
            stage: TraceStage::Capture,
            sim_us: n,
            arg: n,
        }
    }

    #[test]
    fn fills_then_overwrites_oldest() {
        let ring = TraceRing::with_capacity(3);
        assert!(ring.is_empty());
        for n in 0..5 {
            ring.push(ev(n));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.overwritten(), 2);
        let got: Vec<u64> = ring.snapshot().iter().map(|e| e.sim_us).collect();
        assert_eq!(got, vec![2, 3, 4], "most recent 3, oldest first");
    }

    #[test]
    fn partial_fill_keeps_order() {
        let ring = TraceRing::with_capacity(8);
        for n in 0..3 {
            ring.push(ev(n));
        }
        assert_eq!(ring.overwritten(), 0);
        let got: Vec<u64> = ring.snapshot().iter().map(|e| e.sim_us).collect();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn snapshot_into_appends_and_reuses_buffer() {
        let ring = TraceRing::with_capacity(3);
        for n in 0..5 {
            ring.push(ev(n));
        }
        let mut buf = Vec::with_capacity(8);
        buf.push(ev(99));
        ring.snapshot_into(&mut buf);
        let got: Vec<u64> = buf.iter().map(|e| e.sim_us).collect();
        assert_eq!(got, vec![99, 2, 3, 4], "appends after existing content");
        let cap = buf.capacity();
        buf.clear();
        ring.snapshot_into(&mut buf);
        assert_eq!(buf.capacity(), cap, "reused buffer does not grow");
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = TraceRing::with_capacity(0);
        ring.push(ev(1));
        ring.push(ev(2));
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.snapshot().len(), 1);
        assert_eq!(ring.snapshot()[0].sim_us, 2);
        assert_eq!(ring.overwritten(), 1);
    }

    #[test]
    fn shared_across_threads() {
        let ring = std::sync::Arc::new(TraceRing::with_capacity(1024));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let ring = std::sync::Arc::clone(&ring);
                scope.spawn(move || {
                    for n in 0..100 {
                        ring.push(ev(t * 1000 + n));
                    }
                });
            }
        });
        assert_eq!(ring.len(), 400);
        assert_eq!(ring.overwritten(), 0);
        // Each thread's events keep their relative order.
        for t in 0..4u64 {
            let mine: Vec<u64> = ring
                .snapshot()
                .iter()
                .map(|e| e.sim_us)
                .filter(|s| s / 1000 == t)
                .collect();
            let mut sorted = mine.clone();
            sorted.sort_unstable();
            assert_eq!(mine, sorted);
        }
    }
}
