//! Fixed-bucket base-2 logarithmic histogram.
//!
//! Bucket 0 holds exactly the value `0`; bucket `i` (for `i >= 1`) holds
//! values in `[2^(i-1), 2^i - 1]`. With 65 buckets the full `u64` range is
//! covered, recording is a single shift + a handful of relaxed atomic ops,
//! and the memory footprint per histogram is constant (~1 KiB). Relative
//! quantile error is bounded by the bucket width (a factor of 2), and the
//! snapshot additionally tracks exact `min`/`max`/`sum` so the reported
//! percentiles are clamped to the observed range and [`HistogramSnapshot::mean`]
//! is **exact** (never bucket-midpoint-approximated). The sum is 128-bit —
//! a campaign merging billions of `u64` samples cannot overflow it — and
//! [`HistogramSnapshot::merge`] stays commutative and associative, which is
//! what lets the campaign store fold runs in completion order.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per power of two up to `2^63`.
pub const BUCKETS: usize = 65;

/// Maps a value to its bucket index.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` value range covered by bucket `index`.
///
/// # Panics
/// Panics if `index >= BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    if index == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (index - 1);
        let hi = if index == 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        };
        (lo, hi)
    }
}

/// Shared, thread-safe histogram cell. Obtain handles via
/// [`crate::Recorder::histogram`]; read via [`Histogram::snapshot`].
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Low 64 bits of the 128-bit running sum.
    sum_lo: AtomicU64,
    /// Carries out of `sum_lo` (the high 64 bits of the running sum).
    sum_hi: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_lo: AtomicU64::new(0),
            sum_hi: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. All atomics are relaxed: per-instrument totals
    /// are exact, and snapshots are only taken after the run quiesces
    /// (which also makes the two-word sum read consistent).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let prev = self.sum_lo.fetch_add(value, Ordering::Relaxed);
        if u128::from(prev) + u128::from(value) > u128::from(u64::MAX) {
            self.sum_hi.fetch_add(1, Ordering::Relaxed);
        }
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Copies the current state into an owned, mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count,
            sum: (u128::from(self.sum_hi.load(Ordering::Relaxed)) << 64)
                | u128::from(self.sum_lo.load(Ordering::Relaxed)),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Owned point-in-time view of a [`Histogram`]. Keeps the full bucket
/// array so snapshots from independent runs can be merged without losing
/// quantile fidelity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_bounds`]).
    pub buckets: [u64; BUCKETS],
    /// Total number of samples.
    pub count: u64,
    /// Exact sum of all samples (128-bit: even a campaign of 2⁶⁴ maximal
    /// samples cannot overflow it, so [`mean`](Self::mean) is exact).
    pub sum: u128,
    /// Smallest sample observed (0 when empty).
    pub min: u64,
    /// Largest sample observed (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact arithmetic mean of all samples (0.0 when empty): the exact
    /// 128-bit sum over the count, not a bucket-midpoint approximation.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// inside the bucket containing the rank-`ceil(q * count)` sample,
    /// clamped to the exact observed `[min, max]`. The estimate always
    /// falls inside the same base-2 bucket as the true order statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = bucket_bounds(i);
                let pos = rank - seen; // 1-based position within this bucket
                let frac = if n > 1 {
                    (pos - 1) as f64 / (n - 1) as f64
                } else {
                    0.5
                };
                let est = lo as f64 + frac * (hi - lo) as f64;
                // First clamp to the bucket (f64 rounding can overshoot `hi`
                // for buckets wider than 2^53), then to the observed range.
                return (est.round() as u64).clamp(lo, hi).clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds another snapshot into this one (used when aggregating
    /// per-run telemetry into campaign totals).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_bounds(0), (0, 0));
        for i in 1..64usize {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, 1u64 << (i - 1));
            assert_eq!(hi, (1u64 << i) - 1);
            // Boundary values land in the right bucket on both sides.
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
            assert_eq!(bucket_index(lo - 1), i - 1, "below lo of bucket {i}");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bounds(64), (1u64 << 63, u64::MAX));
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!((s.min, s.max, s.sum), (0, 0, 0));
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let h = Histogram::new();
        h.record(1500);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50(), 1500);
        assert_eq!(s.p99(), 1500);
        assert_eq!(s.max, 1500);
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [0u64, 1, 7, 8, 100, 1000, 65_535] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 9, 512, 70_000] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn merge_into_empty_copies() {
        let b = Histogram::new();
        b.record(42);
        let mut merged = HistogramSnapshot::default();
        merged.merge(&b.snapshot());
        assert_eq!(merged, b.snapshot());
        assert_eq!(merged.min, 42);
    }
}
