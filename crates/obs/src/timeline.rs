//! Time-resolved safety/QoS timelines: fixed-width sim-time windows of
//! integer-only aggregates.
//!
//! Whole-run telemetry (one `session.frame_age_us` histogram per run)
//! answers "how bad was it overall"; the paper's question is *when* —
//! faults are injected at points of interest and collisions attributed to
//! the surrounding window. A [`Timeline`] buckets the session into
//! fixed-width windows of simulation time (default 1 s) and accumulates,
//! per window:
//!
//! * **Glass-to-glass decomposition** — frame age count/sum/max plus the
//!   four legs it decomposes into exactly (in integer microseconds):
//!   capture→encode, uplink queue (rate-limiter serialization wait),
//!   propagation (delay model), and decode→display (release → delivering
//!   tick). `encode + queue + prop + display == frame age`, sum for sum,
//!   which the core oracle test pins against the whole-run histogram.
//! * **Command age** count/sum/max (downlink glass-to-actuator).
//! * **Per-direction link counters** — packets dropped / delayed /
//!   duplicated / reordered, and the maximum in-flight queue depth.
//! * **Safety signals** — minimum gated TTC, steering-reversal count
//!   (incremental J2944 hysteresis), speed sum (mm/s) + sample count,
//!   and a fault-activity bitmask.
//!
//! Everything is an integer, so windows merge associatively and
//! serialize deterministically ([`Timeline::to_json`] via the crate's
//! raw-token JSON writer) — the properties the `--jobs`/`--batch`
//! digest-equivalence harness requires. The struct is `Digestible` in
//! `rdsim-core` (this crate stays dependency-free).
//!
//! Allocation discipline: [`Timeline::preallocate`] sizes the window
//! vector from the protocol duration, after which
//! [`Timeline::window_mut`] never allocates — the alloc-regression gate
//! runs with the timeline enabled.

use crate::json::JsonValue;

/// Default window width: 1 second of simulation time, in microseconds.
pub const DEFAULT_WINDOW_US: u64 = 1_000_000;

/// Sentinel for "no gated TTC sample in this window".
const TTC_NONE: u64 = u64::MAX;

/// One fixed-width window of integer aggregates. All `_us` fields are
/// microseconds of simulation time; `sum`/`count`/counter fields add
/// under [`TimelineWindow::merge`], `max` fields take the maximum, and
/// [`TimelineWindow::min_gated_ttc_us`] takes the minimum (with
/// `u64::MAX` as the empty sentinel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineWindow {
    /// Frames displayed in this window.
    pub frame_count: u64,
    /// Sum of displayed-frame ages (capture → display).
    pub frame_age_sum_us: u64,
    /// Maximum displayed-frame age.
    pub frame_age_max_us: u64,
    /// Leg 1 sum: capture → uplink enqueue (encode latency).
    pub encode_sum_us: u64,
    /// Leg 1 maximum.
    pub encode_max_us: u64,
    /// Leg 2 sum: uplink queue wait (rate-limiter serialization).
    pub queue_sum_us: u64,
    /// Leg 2 maximum.
    pub queue_max_us: u64,
    /// Leg 3 sum: propagation (netem delay model).
    pub prop_sum_us: u64,
    /// Leg 3 maximum.
    pub prop_max_us: u64,
    /// Leg 4 sum: link release → delivering tick (decode/display wait).
    pub display_sum_us: u64,
    /// Leg 4 maximum.
    pub display_max_us: u64,
    /// Commands actuated in this window.
    pub cmd_count: u64,
    /// Sum of actuated-command ages (emit → actuate).
    pub cmd_age_sum_us: u64,
    /// Maximum actuated-command age.
    pub cmd_age_max_us: u64,
    /// Uplink packets dropped by the link's loss model.
    pub up_dropped: u64,
    /// Uplink packets tail-dropped by a full finite queue (congestion) —
    /// split from `up_dropped` so dossiers can tell congestion from
    /// radio loss.
    pub up_queue_dropped: u64,
    /// Uplink frames delivered late (nonzero queue + propagation).
    pub up_delayed: u64,
    /// Uplink packets duplicated by the link.
    pub up_duplicated: u64,
    /// Uplink packets reordered past later traffic.
    pub up_reordered: u64,
    /// Maximum uplink in-flight queue depth observed.
    pub up_queue_max: u64,
    /// Downlink packets dropped by the link's loss model.
    pub down_dropped: u64,
    /// Downlink packets tail-dropped by a full finite queue (congestion).
    pub down_queue_dropped: u64,
    /// Downlink commands delivered late (nonzero queue + propagation).
    pub down_delayed: u64,
    /// Downlink packets duplicated by the link.
    pub down_duplicated: u64,
    /// Downlink packets reordered past later traffic.
    pub down_reordered: u64,
    /// Maximum downlink in-flight queue depth observed.
    pub down_queue_max: u64,
    /// Minimum gated time-to-collision (µs; `u64::MAX` = never gated).
    pub min_gated_ttc_us: u64,
    /// J2944 steering reversals detected in this window.
    pub srr_reversals: u64,
    /// Sum of per-tick ego speed samples, millimetres per second.
    pub speed_sum_mmps: u64,
    /// Number of speed samples (= ticks attributed to this window).
    pub speed_samples: u64,
    /// OR of the [`Timeline::FAULT_ACTIVE`]… bits active in this window.
    pub fault_bits: u64,
}

impl Default for TimelineWindow {
    fn default() -> Self {
        TimelineWindow {
            frame_count: 0,
            frame_age_sum_us: 0,
            frame_age_max_us: 0,
            encode_sum_us: 0,
            encode_max_us: 0,
            queue_sum_us: 0,
            queue_max_us: 0,
            prop_sum_us: 0,
            prop_max_us: 0,
            display_sum_us: 0,
            display_max_us: 0,
            cmd_count: 0,
            cmd_age_sum_us: 0,
            cmd_age_max_us: 0,
            up_dropped: 0,
            up_queue_dropped: 0,
            up_delayed: 0,
            up_duplicated: 0,
            up_reordered: 0,
            up_queue_max: 0,
            down_dropped: 0,
            down_queue_dropped: 0,
            down_delayed: 0,
            down_duplicated: 0,
            down_reordered: 0,
            down_queue_max: 0,
            min_gated_ttc_us: TTC_NONE,
            srr_reversals: 0,
            speed_sum_mmps: 0,
            speed_samples: 0,
            fault_bits: 0,
        }
    }
}

impl TimelineWindow {
    /// Folds `other` into `self`: sums and counters add (saturating),
    /// maxima take the max, the TTC minimum takes the min, fault bits OR.
    pub fn merge(&mut self, other: &TimelineWindow) {
        self.frame_count = self.frame_count.saturating_add(other.frame_count);
        self.frame_age_sum_us = self.frame_age_sum_us.saturating_add(other.frame_age_sum_us);
        self.frame_age_max_us = self.frame_age_max_us.max(other.frame_age_max_us);
        self.encode_sum_us = self.encode_sum_us.saturating_add(other.encode_sum_us);
        self.encode_max_us = self.encode_max_us.max(other.encode_max_us);
        self.queue_sum_us = self.queue_sum_us.saturating_add(other.queue_sum_us);
        self.queue_max_us = self.queue_max_us.max(other.queue_max_us);
        self.prop_sum_us = self.prop_sum_us.saturating_add(other.prop_sum_us);
        self.prop_max_us = self.prop_max_us.max(other.prop_max_us);
        self.display_sum_us = self.display_sum_us.saturating_add(other.display_sum_us);
        self.display_max_us = self.display_max_us.max(other.display_max_us);
        self.cmd_count = self.cmd_count.saturating_add(other.cmd_count);
        self.cmd_age_sum_us = self.cmd_age_sum_us.saturating_add(other.cmd_age_sum_us);
        self.cmd_age_max_us = self.cmd_age_max_us.max(other.cmd_age_max_us);
        self.up_dropped = self.up_dropped.saturating_add(other.up_dropped);
        self.up_queue_dropped = self.up_queue_dropped.saturating_add(other.up_queue_dropped);
        self.up_delayed = self.up_delayed.saturating_add(other.up_delayed);
        self.up_duplicated = self.up_duplicated.saturating_add(other.up_duplicated);
        self.up_reordered = self.up_reordered.saturating_add(other.up_reordered);
        self.up_queue_max = self.up_queue_max.max(other.up_queue_max);
        self.down_dropped = self.down_dropped.saturating_add(other.down_dropped);
        self.down_queue_dropped = self
            .down_queue_dropped
            .saturating_add(other.down_queue_dropped);
        self.down_delayed = self.down_delayed.saturating_add(other.down_delayed);
        self.down_duplicated = self.down_duplicated.saturating_add(other.down_duplicated);
        self.down_reordered = self.down_reordered.saturating_add(other.down_reordered);
        self.down_queue_max = self.down_queue_max.max(other.down_queue_max);
        self.min_gated_ttc_us = self.min_gated_ttc_us.min(other.min_gated_ttc_us);
        self.srr_reversals = self.srr_reversals.saturating_add(other.srr_reversals);
        self.speed_sum_mmps = self.speed_sum_mmps.saturating_add(other.speed_sum_mmps);
        self.speed_samples = self.speed_samples.saturating_add(other.speed_samples);
        self.fault_bits |= other.fault_bits;
    }

    /// `true` when nothing has been recorded into this window.
    pub fn is_empty(&self) -> bool {
        *self == TimelineWindow::default()
    }

    /// Records a displayed frame with its exact leg decomposition
    /// (`encode + queue + prop + display` must equal `age_us`; the
    /// session stamps all four from the same integer clock, so the
    /// identity is exact, not rounded).
    pub fn record_frame(&mut self, age_us: u64, encode: u64, queue: u64, prop: u64, display: u64) {
        self.frame_count += 1;
        self.frame_age_sum_us = self.frame_age_sum_us.saturating_add(age_us);
        self.frame_age_max_us = self.frame_age_max_us.max(age_us);
        self.encode_sum_us = self.encode_sum_us.saturating_add(encode);
        self.encode_max_us = self.encode_max_us.max(encode);
        self.queue_sum_us = self.queue_sum_us.saturating_add(queue);
        self.queue_max_us = self.queue_max_us.max(queue);
        self.prop_sum_us = self.prop_sum_us.saturating_add(prop);
        self.prop_max_us = self.prop_max_us.max(prop);
        self.display_sum_us = self.display_sum_us.saturating_add(display);
        self.display_max_us = self.display_max_us.max(display);
        if queue + prop > 0 {
            self.up_delayed += 1;
        }
    }

    /// Records an actuated command age; `delayed` marks a nonzero
    /// downlink queue + propagation wait.
    pub fn record_command(&mut self, age_us: u64, delayed: bool) {
        self.cmd_count += 1;
        self.cmd_age_sum_us = self.cmd_age_sum_us.saturating_add(age_us);
        self.cmd_age_max_us = self.cmd_age_max_us.max(age_us);
        if delayed {
            self.down_delayed += 1;
        }
    }

    /// Records a gated TTC observation (µs).
    pub fn record_gated_ttc(&mut self, ttc_us: u64) {
        self.min_gated_ttc_us = self.min_gated_ttc_us.min(ttc_us);
    }
}

/// A run's time-resolved aggregate series: contiguous fixed-width windows
/// from simulation time zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    width_us: u64,
    windows: Vec<TimelineWindow>,
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline::new(DEFAULT_WINDOW_US)
    }
}

impl Timeline {
    /// Fault bit: any fault-injection rule active.
    pub const FAULT_ACTIVE: u64 = 1;
    /// Fault bit: an active rule adds delay/jitter.
    pub const FAULT_DELAY: u64 = 1 << 1;
    /// Fault bit: an active rule drops packets.
    pub const FAULT_LOSS: u64 = 1 << 2;
    /// Fault bit: an active rule duplicates packets.
    pub const FAULT_DUPLICATE: u64 = 1 << 3;
    /// Fault bit: an active rule corrupts payloads.
    pub const FAULT_CORRUPT: u64 = 1 << 4;
    /// Fault bit: an active rule reorders packets.
    pub const FAULT_REORDER: u64 = 1 << 5;
    /// Fault bit: an active rule rate-limits the link.
    pub const FAULT_RATE: u64 = 1 << 6;
    /// Fault bit: an active rule enforces a finite queue (explicit
    /// `limit` or the BDP default a rate implies), so drops in this
    /// window may be congestion, not radio loss.
    pub const FAULT_LIMIT: u64 = 1 << 7;

    /// Creates an empty timeline with `width_us`-wide windows (min 1 µs).
    pub fn new(width_us: u64) -> Self {
        Timeline {
            width_us: width_us.max(1),
            windows: Vec::new(),
        }
    }

    /// The window width in microseconds.
    pub fn width_us(&self) -> u64 {
        self.width_us
    }

    /// The windows recorded so far, oldest first, contiguous from t = 0.
    pub fn windows(&self) -> &[TimelineWindow] {
        &self.windows
    }

    /// Number of windows materialized so far.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// `true` when no window has been materialized yet.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The index of the window containing simulation time `t_us`.
    pub fn window_index(&self, t_us: u64) -> usize {
        (t_us / self.width_us) as usize
    }

    /// Reserves window storage for a run of `duration_us`, so recording
    /// never allocates in steady state (in-flight traffic can land one
    /// window past the nominal end; headroom covers it).
    pub fn preallocate(&mut self, duration_us: u64) {
        let want = (duration_us / self.width_us) as usize + 4;
        if want > self.windows.len() {
            self.windows.reserve(want - self.windows.len());
        }
    }

    /// The window containing `t_us`, materializing windows up to it.
    /// Allocation-free once [`Timeline::preallocate`] covered `t_us`.
    pub fn window_mut(&mut self, t_us: u64) -> &mut TimelineWindow {
        let idx = self.window_index(t_us);
        while self.windows.len() <= idx {
            self.windows.push(TimelineWindow::default());
        }
        &mut self.windows[idx]
    }

    /// Folds `other` into `self` window by window. Both timelines must
    /// use the same window width.
    ///
    /// # Panics
    /// When the widths differ — merging incommensurate grids is a bug.
    pub fn merge(&mut self, other: &Timeline) {
        assert_eq!(
            self.width_us, other.width_us,
            "cannot merge timelines with different window widths"
        );
        while self.windows.len() < other.windows.len() {
            self.windows.push(TimelineWindow::default());
        }
        for (mine, theirs) in self.windows.iter_mut().zip(&other.windows) {
            mine.merge(theirs);
        }
    }

    /// Serializes the whole timeline as deterministic compact JSON.
    pub fn to_json(&self) -> String {
        self.json_value(0, self.windows.len()).to_json()
    }

    /// The windows overlapping `[from_us, to_us]` as a JSON object with
    /// the range's absolute `start_us` — the forensics dossier splice.
    pub fn range_json(&self, from_us: u64, to_us: u64) -> JsonValue {
        let start = (self.window_index(from_us)).min(self.windows.len());
        let end = if to_us < from_us {
            start
        } else {
            (self.window_index(to_us) + 1).min(self.windows.len())
        };
        self.json_value(start, end)
    }

    fn json_value(&self, start: usize, end: usize) -> JsonValue {
        let windows = self.windows[start..end].iter().map(window_json).collect();
        JsonValue::Obj(vec![
            ("width_us".into(), num(self.width_us)),
            ("start_us".into(), num(start as u64 * self.width_us)),
            ("windows".into(), JsonValue::Arr(windows)),
        ])
    }
}

fn num(v: u64) -> JsonValue {
    JsonValue::Num(v.to_string())
}

fn window_json(w: &TimelineWindow) -> JsonValue {
    let ttc = if w.min_gated_ttc_us == TTC_NONE {
        JsonValue::Null
    } else {
        num(w.min_gated_ttc_us)
    };
    JsonValue::Obj(vec![
        ("frame_count".into(), num(w.frame_count)),
        ("frame_age_sum_us".into(), num(w.frame_age_sum_us)),
        ("frame_age_max_us".into(), num(w.frame_age_max_us)),
        ("encode_sum_us".into(), num(w.encode_sum_us)),
        ("encode_max_us".into(), num(w.encode_max_us)),
        ("queue_sum_us".into(), num(w.queue_sum_us)),
        ("queue_max_us".into(), num(w.queue_max_us)),
        ("prop_sum_us".into(), num(w.prop_sum_us)),
        ("prop_max_us".into(), num(w.prop_max_us)),
        ("display_sum_us".into(), num(w.display_sum_us)),
        ("display_max_us".into(), num(w.display_max_us)),
        ("cmd_count".into(), num(w.cmd_count)),
        ("cmd_age_sum_us".into(), num(w.cmd_age_sum_us)),
        ("cmd_age_max_us".into(), num(w.cmd_age_max_us)),
        ("up_dropped".into(), num(w.up_dropped)),
        ("up_queue_dropped".into(), num(w.up_queue_dropped)),
        ("up_delayed".into(), num(w.up_delayed)),
        ("up_duplicated".into(), num(w.up_duplicated)),
        ("up_reordered".into(), num(w.up_reordered)),
        ("up_queue_max".into(), num(w.up_queue_max)),
        ("down_dropped".into(), num(w.down_dropped)),
        ("down_queue_dropped".into(), num(w.down_queue_dropped)),
        ("down_delayed".into(), num(w.down_delayed)),
        ("down_duplicated".into(), num(w.down_duplicated)),
        ("down_reordered".into(), num(w.down_reordered)),
        ("down_queue_max".into(), num(w.down_queue_max)),
        ("min_gated_ttc_us".into(), ttc),
        ("srr_reversals".into(), num(w.srr_reversals)),
        ("speed_sum_mmps".into(), num(w.speed_sum_mmps)),
        ("speed_samples".into(), num(w.speed_samples)),
        ("fault_bits".into(), num(w.fault_bits)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_indexing_and_materialization() {
        let mut tl = Timeline::new(1_000_000);
        assert!(tl.is_empty());
        tl.window_mut(2_500_000).frame_count = 7;
        assert_eq!(tl.len(), 3, "windows 0..=2 materialized");
        assert_eq!(tl.windows()[2].frame_count, 7);
        assert!(tl.windows()[0].is_empty());
        assert_eq!(tl.window_index(999_999), 0);
        assert_eq!(tl.window_index(1_000_000), 1);
    }

    #[test]
    fn preallocate_covers_run_without_growth() {
        let mut tl = Timeline::new(1_000_000);
        tl.preallocate(10_000_000);
        let cap = tl.windows.capacity();
        assert!(cap >= 14);
        for t in (0..10_000_000).step_by(20_000) {
            tl.window_mut(t).speed_samples += 1;
        }
        assert_eq!(tl.windows.capacity(), cap, "no reallocation mid-run");
    }

    #[test]
    fn record_frame_keeps_leg_identity() {
        let mut w = TimelineWindow::default();
        w.record_frame(100, 40, 25, 30, 5);
        w.record_frame(7, 7, 0, 0, 0);
        assert_eq!(
            w.frame_age_sum_us,
            w.encode_sum_us + w.queue_sum_us + w.prop_sum_us + w.display_sum_us
        );
        assert_eq!(w.frame_count, 2);
        assert_eq!(w.up_delayed, 1, "only the first frame had link latency");
        assert_eq!(w.frame_age_max_us, 100);
    }

    #[test]
    fn merge_is_commutative_and_respects_sentinels() {
        let mut a = TimelineWindow::default();
        a.record_frame(10, 10, 0, 0, 0);
        a.record_gated_ttc(4_000_000);
        a.fault_bits = Timeline::FAULT_ACTIVE | Timeline::FAULT_LOSS;
        let mut b = TimelineWindow::default();
        b.record_command(55, true);
        b.fault_bits = Timeline::FAULT_ACTIVE | Timeline::FAULT_DELAY;

        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.min_gated_ttc_us, 4_000_000, "empty side must not win");
        assert_eq!(
            ab.fault_bits,
            Timeline::FAULT_ACTIVE | Timeline::FAULT_LOSS | Timeline::FAULT_DELAY
        );

        let mut empty = TimelineWindow::default();
        empty.merge(&TimelineWindow::default());
        assert_eq!(empty.min_gated_ttc_us, u64::MAX);
    }

    #[test]
    fn timeline_merge_extends_and_folds() {
        let mut a = Timeline::new(1_000_000);
        a.window_mut(500_000).frame_count = 1;
        let mut b = Timeline::new(1_000_000);
        b.window_mut(2_200_000).cmd_count = 3;
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.windows()[0].frame_count, 1);
        assert_eq!(a.windows()[2].cmd_count, 3);
    }

    #[test]
    #[should_panic(expected = "different window widths")]
    fn merge_rejects_width_mismatch() {
        let mut a = Timeline::new(1_000_000);
        a.merge(&Timeline::new(500_000));
    }

    #[test]
    fn json_is_deterministic_and_range_slices() {
        let mut tl = Timeline::new(1_000_000);
        tl.window_mut(100).record_frame(10, 10, 0, 0, 0);
        tl.window_mut(3_100_000).record_gated_ttc(2_750_000);
        assert_eq!(tl.to_json(), tl.clone().to_json());

        let full = JsonValue::parse(&tl.to_json()).unwrap();
        assert_eq!(full.get("width_us").unwrap().as_u64(), Some(1_000_000));
        assert_eq!(full.get("start_us").unwrap().as_u64(), Some(0));
        assert_eq!(full.get("windows").unwrap().as_arr().unwrap().len(), 4);
        let w0 = &full.get("windows").unwrap().as_arr().unwrap()[0];
        assert_eq!(w0.get("frame_count").unwrap().as_u64(), Some(1));
        assert_eq!(
            w0.get("min_gated_ttc_us"),
            Some(&JsonValue::Null),
            "sentinel serializes as null"
        );
        let w3 = &full.get("windows").unwrap().as_arr().unwrap()[3];
        assert_eq!(
            w3.get("min_gated_ttc_us").unwrap().as_u64(),
            Some(2_750_000)
        );

        let slice = tl.range_json(2_900_000, 3_500_000);
        assert_eq!(slice.get("start_us").unwrap().as_u64(), Some(2_000_000));
        assert_eq!(slice.get("windows").unwrap().as_arr().unwrap().len(), 2);

        let inverted = tl.range_json(5, 1);
        assert_eq!(inverted.get("windows").unwrap().as_arr().unwrap().len(), 0);

        let past_end = tl.range_json(9_000_000, 11_000_000);
        assert_eq!(past_end.get("windows").unwrap().as_arr().unwrap().len(), 0);
        assert_eq!(past_end.get("start_us").unwrap().as_u64(), Some(4_000_000));
    }
}
