//! Hand-rolled Chrome/Perfetto `trace_event` JSON writer.
//!
//! Emits the JSON-object format both `chrome://tracing` and
//! [ui.perfetto.dev](https://ui.perfetto.dev) load directly. No external
//! serializer: every string written is a fixed label or a formatted
//! number, so plain `write!` is sufficient and the output is
//! deterministic for a deterministic [`TraceLog`].
//!
//! Layout chosen for readability in the Perfetto UI:
//!
//! * one *process* per artifact kind (video pipeline, command pipeline,
//!   incidents …), one *thread lane* per pipeline stage;
//! * every [`TraceEvent`] becomes an instant event (`"ph":"i"`) on its
//!   stage lane, with the artifact id and stage detail in `args`;
//! * every artifact with ≥ 2 events additionally becomes an async span
//!   (`"ph":"b"` / `"ph":"e"`, keyed by the artifact's raw id), so each
//!   frame/command shows as one bar from origin to its last observed hop
//!   — the capture → actuation lineage at a glance.
//!
//! Timestamps (`"ts"`) are the events' sim-time in µs, which is exactly
//! the unit the format expects.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::trace::{ArtifactKind, TraceEvent, TraceLog};

fn pid(kind: ArtifactKind) -> u32 {
    match kind {
        ArtifactKind::Frame => 1,
        ArtifactKind::Command => 2,
        ArtifactKind::Meta => 3,
        ArtifactKind::Qos => 4,
        ArtifactKind::Incident => 5,
    }
}

fn process_name(kind: ArtifactKind) -> &'static str {
    match kind {
        ArtifactKind::Frame => "video pipeline (vehicle -> operator)",
        ArtifactKind::Command => "command pipeline (operator -> vehicle)",
        ArtifactKind::Meta => "meta packets",
        ArtifactKind::Qos => "qos packets",
        ArtifactKind::Incident => "incidents & fault windows",
    }
}

/// Renders a [`TraceLog`] as a Chrome `trace_event` JSON document.
pub fn chrome_trace_json(log: &TraceLog) -> String {
    let mut out = String::with_capacity(256 + log.events.len() * 160);
    let _ = write!(
        out,
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"events\":{},\"overwritten\":{},\"capacity\":{}}},\"traceEvents\":[",
        log.events.len(),
        log.overwritten,
        log.capacity
    );
    let mut first = true;
    let mut push = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };

    // Metadata: name every process and stage lane that actually appears.
    let mut lanes: BTreeMap<(u32, u32), &'static str> = BTreeMap::new();
    let mut procs: BTreeMap<u32, &'static str> = BTreeMap::new();
    for e in &log.events {
        let p = pid(e.id.kind());
        procs.insert(p, process_name(e.id.kind()));
        lanes.insert((p, e.stage.lane()), e.stage.label());
    }
    for (p, name) in &procs {
        push(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{p},\"tid\":0,\"args\":{{\"name\":\"{name}\"}}}}"
        );
    }
    for ((p, t), name) in &lanes {
        push(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{p},\"tid\":{t},\"args\":{{\"name\":\"{name}\"}}}}"
        );
    }

    // Async lineage spans: one bar per artifact from its first to its
    // last observed event (in recorded order, which is causal order).
    let mut spans: BTreeMap<crate::trace::TraceId, (TraceEvent, TraceEvent, usize)> =
        BTreeMap::new();
    for e in &log.events {
        spans
            .entry(e.id)
            .and_modify(|(_, last, n)| {
                *last = *e;
                *n += 1;
            })
            .or_insert((*e, *e, 1));
    }
    for (id, (begin, end, n)) in &spans {
        if *n < 2 {
            continue;
        }
        let (p, cat) = (pid(id.kind()), id.kind().label());
        let lane = begin.stage.lane();
        push(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{id}\",\"cat\":\"{cat}\",\"ph\":\"b\",\"id\":\"0x{:x}\",\"pid\":{p},\"tid\":{lane},\"ts\":{},\"args\":{{\"hops\":{n}}}}}",
            id.raw(),
            begin.sim_us
        );
        push(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{id}\",\"cat\":\"{cat}\",\"ph\":\"e\",\"id\":\"0x{:x}\",\"pid\":{p},\"tid\":{lane},\"ts\":{}}}",
            id.raw(),
            end.sim_us.max(begin.sim_us)
        );
    }

    // Instant events: one per recorded hop/decision.
    for e in &log.events {
        let kind = e.id.kind();
        let (p, cat, lane) = (pid(kind), kind.label(), e.stage.lane());
        // Incidents render process-wide so they stand out.
        let scope = if kind == ArtifactKind::Incident {
            "p"
        } else {
            "t"
        };
        push(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"{scope}\",\"pid\":{p},\"tid\":{lane},\"ts\":{},\"args\":{{\"id\":\"{}\",\"seq\":{},\"arg\":{}}}}}",
            e.stage.label(),
            e.sim_us,
            e.id,
            e.id.seq(),
            e.arg
        );
    }

    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceId, TraceStage, Tracer};

    fn sample_log() -> TraceLog {
        let t = Tracer::with_capacity(64);
        let f = TraceId::frame(3);
        t.record(f, TraceStage::Capture, 1_000, 3);
        t.record(f, TraceStage::NetemEnqueue, 1_200, 2_000);
        t.record(f, TraceStage::NetemDeliver, 51_200, 50_000);
        t.record(f, TraceStage::Display, 51_200, 50_200);
        let c = TraceId::command(9);
        t.record(c, TraceStage::CommandEmit, 60_000, 3);
        t.record(c, TraceStage::NetemDrop, 60_000, 12);
        t.record(TraceId::incident(0), TraceStage::Incident, 70_000, 1);
        t.log()
    }

    #[test]
    fn emits_wellformed_trace_events() {
        let json = sample_log().to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        // Process + lane metadata for what appeared.
        assert!(json.contains("video pipeline (vehicle -> operator)"));
        assert!(json.contains("command pipeline (operator -> vehicle)"));
        assert!(json.contains("incidents & fault windows"));
        // Async span for the 4-hop frame, begin and end.
        assert!(json.contains("\"name\":\"frame#3\",\"cat\":\"frame\",\"ph\":\"b\""));
        assert!(json.contains("\"name\":\"frame#3\",\"cat\":\"frame\",\"ph\":\"e\""));
        // Instants carry id + arg.
        assert!(json.contains("\"name\":\"netem.drop\""));
        assert!(json.contains("\"id\":\"cmd#9\""));
        // Incident instants are process-scoped.
        assert!(
            json.contains("\"name\":\"incident\",\"cat\":\"incident\",\"ph\":\"i\",\"s\":\"p\"")
        );
        // Balanced braces/brackets (cheap well-formedness check; no string
        // in the output contains braces).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn single_event_artifacts_get_no_span() {
        let t = Tracer::with_capacity(8);
        t.record(TraceId::frame(1), TraceStage::Capture, 0, 0);
        let json = t.log().to_chrome_json();
        assert!(!json.contains("\"ph\":\"b\""));
        assert!(json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn empty_log_is_still_loadable() {
        let json = TraceLog::default().to_chrome_json();
        assert!(json.contains("\"traceEvents\":[]"));
    }
}
