//! Scalar instruments: monotonic counters and last-value gauges.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
///
/// Handles are cheap to clone and always functional — a counter obtained
/// from a [`crate::Recorder::null`] recorder still counts (callers may use
/// it as their source of truth, e.g. `SessionStats`); it just is not
/// registered anywhere, so it never shows up in a [`crate::RunTelemetry`].
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a detached counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// Creates a detached gauge at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a new value.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Loads the current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_clones_share_state() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c2.get(), 5);
    }

    #[test]
    fn gauge_round_trips_f64() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-3.75);
        assert_eq!(g.get(), -3.75);
    }
}
