//! Streaming, order-insensitive campaign result store.
//!
//! A campaign at population scale (ROADMAP item 1: 10⁴–10⁶ sessions)
//! cannot hold every [`RunRecord`]-sized artifact in memory, and its
//! workers finish in scheduling order, not submission order. The
//! [`CampaignStore`] is the aggregate that makes that tractable: each
//! finished run is boiled down to a small [`RunSummary`] and folded in as
//! it completes. Three algebraic properties carry the whole design:
//!
//! * **order-insensitivity** — folding the same set of summaries in any
//!   order yields bit-identical store state. Every accumulator is an
//!   integer (`u64`/`u128`/`i128`; `f64` addition is *not* associative,
//!   so fractional inputs are quantized to micro-units first), run digests
//!   fold through XOR and a wrapping sum (both commutative and
//!   associative), and the maps are `BTreeMap`s;
//! * **mergeability** — two stores built from disjoint run sets merge
//!   into the store of the union ([`CampaignStore::merge`]), which is what
//!   makes sharded and resumed campaigns equal to single-shot ones;
//! * **exact serializability** — a [`RunSummary`] round-trips through
//!   JSON bit-exactly (all fields are integers or strings), so a
//!   checkpoint stream replayed into a fresh store reproduces the original
//!   store state, fingerprint included.
//!
//! Aggregates are keyed by (scenario × condition × subject). A
//! *condition* is a cell label such as `delay:05ms` / `loss:02pct` (one
//! per fault-injection window kind) or `run:golden` (whole-run cells);
//! zero-padding keeps lexicographic order equal to magnitude order.
//! [`CampaignStore::risk_surface`] pools the fault cells across subjects
//! into per-condition `P(collision)` points with Wilson confidence
//! intervals — the delay/loss risk curves the observatory exists to
//! report.
//!
//! [`RunRecord`]: ../rdsim_core/struct.RunRecord.html

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::ci::{wilson_interval, BinomialCi};
use crate::hist::{HistogramSnapshot, BUCKETS};
use crate::json::{write_json_string, JsonError, JsonValue};
use crate::telemetry::{deterministic_instrument, Fnv, RunTelemetry};

/// Scale factor for quantized fractional observations: rates are stored
/// as integer micro-units (`round(value × 1e6)`) so cell accumulation is
/// associative. One micro-unit of SRR is 10⁻⁶ reversals/minute — far
/// below measurement noise.
pub const MICRO: f64 = 1e6;

/// Quantizes a fractional observation to micro-units for exact, order-
/// insensitive accumulation.
pub fn to_micro(value: f64) -> i64 {
    (value * MICRO).round() as i64
}

/// Identity of one run within a campaign: scenario × subject × run-level
/// kind (`training` / `golden` / `faulty`; population campaigns use the
/// fault-condition label, e.g. `delay:50ms`, so a subject's runs across
/// conditions stay distinct). The checkpoint layer uses this as the
/// "already done" key when resuming.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RunKey {
    /// Scenario name (e.g. `town05`).
    pub scenario: String,
    /// Subject id (e.g. `T5`).
    pub subject: String,
    /// Run kind slug (`training` / `golden` / `faulty`).
    pub kind: String,
}

/// One run's observation for one condition cell.
///
/// All fields are integers; fractional metrics are pre-quantized with
/// [`to_micro`] by the summarizer so that folding stays associative.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellSample {
    /// Condition label (`delay:05ms`, `loss:02pct`, `run:faulty`, …).
    pub condition: String,
    /// Trials this run contributes (fault windows of this condition, or 1
    /// for a `run:*` cell).
    pub exposures: u64,
    /// Trials with at least one collision (`<= exposures`; the Wilson-CI
    /// numerator).
    pub collided: u64,
    /// Raw collision count (a window can contain several impacts).
    pub collisions: u64,
    /// TTC samples below the safety threshold within the cell's windows.
    pub ttc_breaches: u64,
    /// TTC samples observed within the cell's windows.
    pub ttc_samples: u64,
    /// Steering reversals within the cell's windows.
    pub srr_reversals: u64,
    /// Pooled SRR of this run's windows, in micro-reversals/minute
    /// ([`to_micro`]); meaningful only when `srr_runs == 1`.
    pub srr_rate_micro: i64,
    /// 1 when this run produced a usable SRR for the cell, else 0.
    pub srr_runs: u64,
    /// Simulated microseconds the run spent inside this cell's fault
    /// windows (all windows for a `run:*` cell) — the time-in-fault
    /// exposure denominator for rate-style reporting.
    pub fault_exposure_us: u64,
}

/// Mergeable per-cell aggregate: the sum of every [`CellSample`] folded
/// into the cell. Integer-only, so merging is associative, commutative
/// and order-insensitive.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellAggregate {
    /// Runs that contributed at least one sample to this cell.
    pub runs: u64,
    /// Total trials.
    pub exposures: u64,
    /// Trials with at least one collision.
    pub collided: u64,
    /// Raw collision count.
    pub collisions: u64,
    /// TTC breach count.
    pub ttc_breaches: u64,
    /// TTC sample count.
    pub ttc_samples: u64,
    /// Steering reversal count.
    pub srr_reversals: u64,
    /// Σ per-run pooled SRR in micro-reversals/minute (`i128`: immune to
    /// overflow at any campaign size).
    pub srr_rate_micro: i128,
    /// Runs with a usable SRR.
    pub srr_runs: u64,
    /// Σ simulated microseconds inside this cell's fault windows (`u128`:
    /// immune to overflow at any campaign size).
    pub fault_exposure_us: u128,
}

impl CellAggregate {
    fn fold(&mut self, s: &CellSample) {
        self.runs += 1;
        self.exposures += s.exposures;
        self.collided += s.collided;
        self.collisions += s.collisions;
        self.ttc_breaches += s.ttc_breaches;
        self.ttc_samples += s.ttc_samples;
        self.srr_reversals += s.srr_reversals;
        self.srr_rate_micro += i128::from(s.srr_rate_micro);
        self.srr_runs += s.srr_runs;
        self.fault_exposure_us += u128::from(s.fault_exposure_us);
    }

    fn merge(&mut self, o: &CellAggregate) {
        self.runs += o.runs;
        self.exposures += o.exposures;
        self.collided += o.collided;
        self.collisions += o.collisions;
        self.ttc_breaches += o.ttc_breaches;
        self.ttc_samples += o.ttc_samples;
        self.srr_reversals += o.srr_reversals;
        self.srr_rate_micro += o.srr_rate_micro;
        self.srr_runs += o.srr_runs;
        self.fault_exposure_us += o.fault_exposure_us;
    }

    /// Wilson interval for `P(collision per trial)` at quantile `z`.
    pub fn collision_ci(&self, z: f64) -> BinomialCi {
        wilson_interval(self.collided, self.exposures, z)
    }

    /// Fraction of TTC samples below the threshold (`None` without TTC
    /// observations).
    pub fn ttc_breach_rate(&self) -> Option<f64> {
        (self.ttc_samples > 0).then(|| self.ttc_breaches as f64 / self.ttc_samples as f64)
    }

    /// Mean of the per-run pooled SRRs, reversals/minute (`None` when no
    /// run produced a usable SRR).
    pub fn mean_srr(&self) -> Option<f64> {
        (self.srr_runs > 0).then(|| self.srr_rate_micro as f64 / self.srr_runs as f64 / MICRO)
    }

    /// Collisions per simulated hour of fault exposure (`None` without
    /// any exposure time) — the time-normalized risk rate that makes
    /// short and long fault windows comparable.
    pub fn collisions_per_exposure_hour(&self) -> Option<f64> {
        (self.fault_exposure_us > 0)
            .then(|| self.collisions as f64 / (self.fault_exposure_us as f64 / 3.6e9))
    }

    fn hash_into(&self, h: &mut Fnv) {
        h.u64(self.runs);
        h.u64(self.exposures);
        h.u64(self.collided);
        h.u64(self.collisions);
        h.u64(self.ttc_breaches);
        h.u64(self.ttc_samples);
        h.u64(self.srr_reversals);
        h.u64(self.srr_rate_micro as u64);
        h.u64((self.srr_rate_micro >> 64) as u64);
        h.u64(self.srr_runs);
        h.u64(self.fault_exposure_us as u64);
        h.u64((self.fault_exposure_us >> 64) as u64);
    }
}

/// Everything one finished run contributes to the store: identity, the
/// run digest, per-cell samples, and a *reduced* telemetry view (counters
/// and histograms only — gauge overwrite and event concatenation are
/// order-sensitive, so they never enter the store).
///
/// Serializes to one JSON line ([`RunSummary::to_json`]) — the checkpoint
/// stream's record format — and parses back bit-exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunSummary {
    /// Scenario name.
    pub scenario: String,
    /// Subject id.
    pub subject: String,
    /// Run kind slug.
    pub kind: String,
    /// The run's seed (diagnostic; not folded).
    pub seed: u64,
    /// The run's deterministic digest (folds into the store via XOR and a
    /// wrapping sum).
    pub digest: u64,
    /// Wall-clock cost of the run in nanoseconds (reporting only; never
    /// fingerprinted).
    pub wall_ns: u64,
    /// Per-condition observations.
    pub cells: Vec<CellSample>,
    /// Final counter values (summed into campaign counters).
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots (merged into campaign histograms; includes the
    /// `*_ns` stage-timing rollups, which reports show but fingerprints
    /// skip).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RunSummary {
    /// The store key of this summary.
    pub fn key(&self) -> RunKey {
        RunKey {
            scenario: self.scenario.clone(),
            subject: self.subject.clone(),
            kind: self.kind.clone(),
        }
    }

    /// Adopts the mergeable parts of a [`RunTelemetry`] (counters and
    /// histograms; gauges and events are order-sensitive and stay out).
    pub fn set_telemetry(&mut self, telemetry: &RunTelemetry) {
        self.counters = telemetry.counters.clone();
        self.histograms = telemetry.histograms.clone();
    }

    /// Serializes to a single JSON line (no interior newlines), the
    /// checkpoint stream's record format. Integers are emitted verbatim,
    /// so [`RunSummary::from_json`] recovers identical bits.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"scenario\":");
        write_json_string(&mut out, &self.scenario);
        out.push_str(",\"subject\":");
        write_json_string(&mut out, &self.subject);
        out.push_str(",\"kind\":");
        write_json_string(&mut out, &self.kind);
        let _ = write!(
            out,
            ",\"seed\":{},\"digest\":{},\"wall_ns\":{},\"cells\":[",
            self.seed, self.digest, self.wall_ns
        );
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"condition\":");
            write_json_string(&mut out, &c.condition);
            let _ = write!(
                out,
                ",\"exposures\":{},\"collided\":{},\"collisions\":{},\"ttc_breaches\":{},\
                 \"ttc_samples\":{},\"srr_reversals\":{},\"srr_rate_micro\":{},\"srr_runs\":{},\
                 \"fault_exposure_us\":{}}}",
                c.exposures,
                c.collided,
                c.collisions,
                c.ttc_breaches,
                c.ttc_samples,
                c.srr_reversals,
                c.srr_rate_micro,
                c.srr_runs,
                c.fault_exposure_us
            );
        }
        out.push_str("],\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, name);
            out.push(':');
            write_histogram(&mut out, hist);
        }
        out.push_str("}}");
        out
    }

    /// Parses a summary serialized by [`RunSummary::to_json`].
    pub fn from_json(text: &str) -> Result<RunSummary, JsonError> {
        let v = JsonValue::parse(text)?;
        let err = |msg: &str| JsonError {
            at: 0,
            msg: msg.to_owned(),
        };
        let str_field = |name: &str| -> Result<String, JsonError> {
            v.get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| err(&format!("missing string field '{name}'")))
        };
        let u64_of = |v: Option<&JsonValue>, name: &str| -> Result<u64, JsonError> {
            v.and_then(JsonValue::as_u64)
                .ok_or_else(|| err(&format!("missing u64 field '{name}'")))
        };
        let mut summary = RunSummary {
            scenario: str_field("scenario")?,
            subject: str_field("subject")?,
            kind: str_field("kind")?,
            seed: u64_of(v.get("seed"), "seed")?,
            digest: u64_of(v.get("digest"), "digest")?,
            wall_ns: u64_of(v.get("wall_ns"), "wall_ns")?,
            ..RunSummary::default()
        };
        let cells = v
            .get("cells")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| err("missing 'cells' array"))?;
        for c in cells {
            summary.cells.push(CellSample {
                condition: c
                    .get("condition")
                    .and_then(JsonValue::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| err("cell without 'condition'"))?,
                exposures: u64_of(c.get("exposures"), "exposures")?,
                collided: u64_of(c.get("collided"), "collided")?,
                collisions: u64_of(c.get("collisions"), "collisions")?,
                ttc_breaches: u64_of(c.get("ttc_breaches"), "ttc_breaches")?,
                ttc_samples: u64_of(c.get("ttc_samples"), "ttc_samples")?,
                srr_reversals: u64_of(c.get("srr_reversals"), "srr_reversals")?,
                srr_rate_micro: c
                    .get("srr_rate_micro")
                    .and_then(JsonValue::as_i64)
                    .ok_or_else(|| err("cell without 'srr_rate_micro'"))?,
                srr_runs: u64_of(c.get("srr_runs"), "srr_runs")?,
                fault_exposure_us: u64_of(c.get("fault_exposure_us"), "fault_exposure_us")?,
            });
        }
        let counters = v
            .get("counters")
            .and_then(JsonValue::as_obj)
            .ok_or_else(|| err("missing 'counters' object"))?;
        for (name, value) in counters {
            summary.counters.insert(
                name.clone(),
                value
                    .as_u64()
                    .ok_or_else(|| err(&format!("counter '{name}' is not a u64")))?,
            );
        }
        let histograms = v
            .get("histograms")
            .and_then(JsonValue::as_obj)
            .ok_or_else(|| err("missing 'histograms' object"))?;
        for (name, value) in histograms {
            summary.histograms.insert(
                name.clone(),
                parse_histogram(value).map_err(|msg| err(&msg))?,
            );
        }
        Ok(summary)
    }
}

fn write_histogram(out: &mut String, h: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
        h.count, h.sum, h.min, h.max
    );
    let mut first = true;
    for (i, &n) in h.buckets.iter().enumerate() {
        if n > 0 {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "[{i},{n}]");
        }
    }
    out.push_str("]}");
}

fn parse_histogram(v: &JsonValue) -> Result<HistogramSnapshot, String> {
    let mut h = HistogramSnapshot {
        count: v
            .get("count")
            .and_then(JsonValue::as_u64)
            .ok_or("histogram without 'count'")?,
        sum: v
            .get("sum")
            .and_then(JsonValue::as_u128)
            .ok_or("histogram without 'sum'")?,
        min: v
            .get("min")
            .and_then(JsonValue::as_u64)
            .ok_or("histogram without 'min'")?,
        max: v
            .get("max")
            .and_then(JsonValue::as_u64)
            .ok_or("histogram without 'max'")?,
        ..HistogramSnapshot::default()
    };
    let buckets = v
        .get("buckets")
        .and_then(JsonValue::as_arr)
        .ok_or("histogram without 'buckets'")?;
    for pair in buckets {
        let pair = pair.as_arr().ok_or("bucket entry is not an array")?;
        let (i, n) = match (
            pair.first().and_then(JsonValue::as_u64),
            pair.get(1).and_then(JsonValue::as_u64),
        ) {
            (Some(i), Some(n)) if pair.len() == 2 => (i as usize, n),
            _ => return Err("bucket entry is not [index, count]".to_owned()),
        };
        if i >= BUCKETS {
            return Err(format!("bucket index {i} out of range"));
        }
        h.buckets[i] = n;
    }
    Ok(h)
}

/// One point of the pooled risk surface: a fault condition, its magnitude
/// axis, and `P(collision per fault window)` with its Wilson interval.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskPoint {
    /// The condition label (`delay:05ms`).
    pub condition: String,
    /// Axis name — the label up to the first `:` (`delay`, `loss`).
    pub axis: String,
    /// Magnitude parsed from the leading digits after the `:` (5, 25, …);
    /// 0 if none parse.
    pub magnitude: u64,
    /// The pooled aggregate across subjects.
    pub aggregate: CellAggregate,
    /// Collision probability with confidence interval.
    pub ci: BinomialCi,
}

/// The streaming campaign aggregate. See the module docs for the algebra;
/// see `rdsim_experiments::observatory` for the summarizer and the
/// checkpoint stream that feed it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignStore {
    runs: u64,
    digest_xor: u64,
    digest_sum: u64,
    wall_ns: u64,
    completed: BTreeSet<RunKey>,
    cells: BTreeMap<(String, String, String), CellAggregate>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl CampaignStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one finished run in. Returns `false` (and changes nothing)
    /// if a summary with the same [`RunKey`] was already folded — which
    /// makes checkpoint replay idempotent.
    pub fn fold(&mut self, s: &RunSummary) -> bool {
        if !self.completed.insert(s.key()) {
            return false;
        }
        self.runs += 1;
        self.digest_xor ^= s.digest;
        self.digest_sum = self.digest_sum.wrapping_add(s.digest);
        self.wall_ns += s.wall_ns;
        for cell in &s.cells {
            self.cells
                .entry((
                    s.scenario.clone(),
                    cell.condition.clone(),
                    s.subject.clone(),
                ))
                .or_default()
                .fold(cell);
        }
        for (name, value) in &s.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &s.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
        true
    }

    /// Merges another store built from a *disjoint* set of runs.
    ///
    /// # Panics
    ///
    /// Panics if the two stores share a completed [`RunKey`] — merging
    /// overlapping stores would double-count.
    pub fn merge(&mut self, other: &CampaignStore) {
        for key in &other.completed {
            assert!(
                self.completed.insert(key.clone()),
                "stores overlap on {key:?}"
            );
        }
        self.runs += other.runs;
        self.digest_xor ^= other.digest_xor;
        self.digest_sum = self.digest_sum.wrapping_add(other.digest_sum);
        self.wall_ns += other.wall_ns;
        for (key, agg) in &other.cells {
            self.cells.entry(key.clone()).or_default().merge(agg);
        }
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// Runs folded so far.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// XOR of the folded run digests (one half of the digest pair; the
    /// wrapping sum is the other — together they make reordering-plus-
    /// tampering collisions implausible).
    pub fn digest_xor(&self) -> u64 {
        self.digest_xor
    }

    /// Wrapping sum of the folded run digests.
    pub fn digest_sum(&self) -> u64 {
        self.digest_sum
    }

    /// Total wall-clock nanoseconds across folded runs (reporting only).
    pub fn wall_ns(&self) -> u64 {
        self.wall_ns
    }

    /// Whether a run is already folded.
    pub fn contains(&self, key: &RunKey) -> bool {
        self.completed.contains(key)
    }

    /// The folded runs' keys, in order.
    pub fn completed(&self) -> impl Iterator<Item = &RunKey> {
        self.completed.iter()
    }

    /// Campaign-wide counter total by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Campaign-wide merged histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// All merged histograms (the `*_ns` entries are the stage-timing
    /// rollups).
    pub fn histograms(&self) -> &BTreeMap<String, HistogramSnapshot> {
        &self.histograms
    }

    /// Iterates `(scenario, condition, subject) → aggregate` in key order.
    pub fn cells(&self) -> impl Iterator<Item = (&str, &str, &str, &CellAggregate)> {
        self.cells
            .iter()
            .map(|((sc, co, su), agg)| (sc.as_str(), co.as_str(), su.as_str(), agg))
    }

    /// One cell's aggregate.
    pub fn cell(&self, scenario: &str, condition: &str, subject: &str) -> Option<&CellAggregate> {
        self.cells.get(&(
            scenario.to_owned(),
            condition.to_owned(),
            subject.to_owned(),
        ))
    }

    /// Pools one condition's aggregates across every subject whose id
    /// starts with `subject_prefix` — the adaptive sampler's bandit
    /// signal, where a stratum's subjects share an id prefix
    /// (`g2a0/p00017` pools under `g2a0/`). An empty prefix pools the
    /// condition across all subjects. A single `BTreeMap` range scan, so
    /// the per-round planning cost stays sub-linear in the store size.
    pub fn pooled_cell(
        &self,
        scenario: &str,
        condition: &str,
        subject_prefix: &str,
    ) -> CellAggregate {
        let start = (
            scenario.to_owned(),
            condition.to_owned(),
            subject_prefix.to_owned(),
        );
        let mut agg = CellAggregate::default();
        for ((sc, co, su), cell) in self.cells.range(start..) {
            if sc != scenario || co != condition || !su.starts_with(subject_prefix) {
                break;
            }
            agg.merge(cell);
        }
        agg
    }

    /// Pools every non-`run:*` condition across subjects into one
    /// [`RiskPoint`] per (scenario, condition), in label order — the
    /// `P(collision)` vs delay/loss surface with Wilson intervals at
    /// quantile `z`.
    pub fn risk_surface(&self, z: f64) -> Vec<RiskPoint> {
        let mut pooled: BTreeMap<(String, String), CellAggregate> = BTreeMap::new();
        for ((scenario, condition, _subject), agg) in &self.cells {
            if condition.starts_with("run:") {
                continue;
            }
            pooled
                .entry((scenario.clone(), condition.clone()))
                .or_default()
                .merge(agg);
        }
        pooled
            .into_iter()
            .map(|((_, condition), aggregate)| {
                let (axis, rest) = condition.split_once(':').unwrap_or(("", &condition));
                let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
                RiskPoint {
                    axis: axis.to_owned(),
                    magnitude: digits.parse().unwrap_or(0),
                    ci: aggregate.collision_ci(z),
                    condition,
                    aggregate,
                }
            })
            .collect()
    }

    /// A stable fingerprint of the deterministic store content: run
    /// digests, completed keys, every cell aggregate, and the
    /// deterministic counters/histograms (wall-clock `*_ns` rollups,
    /// `executor.*` fleet signals and `wall_ns` are excluded — see
    /// [`deterministic_instrument`]). Equal for any fold order, any
    /// split-merge shape, and any `--jobs`/`--batch` schedule.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.runs);
        h.u64(self.digest_xor);
        h.u64(self.digest_sum);
        h.u64(self.completed.len() as u64);
        for key in &self.completed {
            h.str(&key.scenario);
            h.str(&key.subject);
            h.str(&key.kind);
        }
        h.u64(self.cells.len() as u64);
        for ((scenario, condition, subject), agg) in &self.cells {
            h.str(scenario);
            h.str(condition);
            h.str(subject);
            agg.hash_into(&mut h);
        }
        let counters = || {
            self.counters
                .iter()
                .filter(|(n, _)| deterministic_instrument(n))
        };
        h.u64(counters().count() as u64);
        for (name, value) in counters() {
            h.str(name);
            h.u64(*value);
        }
        let hists = || {
            self.histograms
                .iter()
                .filter(|(n, _)| deterministic_instrument(n))
        };
        h.u64(hists().count() as u64);
        for (name, hist) in hists() {
            h.str(name);
            h.u64(hist.count);
            h.u64(hist.sum as u64);
            h.u64((hist.sum >> 64) as u64);
            h.u64(hist.min);
            h.u64(hist.max);
            for (i, &n) in hist.buckets.iter().enumerate() {
                if n > 0 {
                    h.u64(i as u64);
                    h.u64(n);
                }
            }
            h.u64(u64::MAX);
        }
        h.finish()
    }

    /// The deterministic machine-readable campaign report (`--report-out
    /// campaign.json`): per-cell aggregates with collision CIs and the
    /// pooled risk surface. Contains no wall-clock content, so it is
    /// byte-diffable across schedules and across interrupt/resume.
    pub fn report_json(&self, z: f64) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"runs\":{},\"fingerprint\":\"{:016x}\",\"digest_xor\":\"{:016x}\",\
             \"digest_sum\":\"{:016x}\",\"cells\":[",
            self.runs,
            self.fingerprint(),
            self.digest_xor,
            self.digest_sum
        );
        for (i, ((scenario, condition, subject), agg)) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"scenario\":");
            write_json_string(&mut out, scenario);
            out.push_str(",\"condition\":");
            write_json_string(&mut out, condition);
            out.push_str(",\"subject\":");
            write_json_string(&mut out, subject);
            write_aggregate_fields(&mut out, agg, z);
            out.push('}');
        }
        out.push_str("],\"risk_surface\":[");
        for (i, point) in self.risk_surface(z).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"condition\":");
            write_json_string(&mut out, &point.condition);
            out.push_str(",\"axis\":");
            write_json_string(&mut out, &point.axis);
            let _ = write!(out, ",\"magnitude\":{}", point.magnitude);
            write_aggregate_fields(&mut out, &point.aggregate, z);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// The wall-clock side channel (`--report-out timings.json`): total
    /// wall time and the merged `*_ns` stage-timing and `executor.*`
    /// fleet instruments that [`CampaignStore::report_json`] deliberately
    /// omits. Not deterministic — never byte-diff this file.
    pub fn timings_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(out, "{{\"wall_ns\":{},\"counters\":{{", self.wall_ns);
        let mut first = true;
        for (name, value) in self
            .counters
            .iter()
            .filter(|(n, _)| !deterministic_instrument(n))
        {
            if !first {
                out.push(',');
            }
            first = false;
            write_json_string(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, hist) in self
            .histograms
            .iter()
            .filter(|(n, _)| !deterministic_instrument(n))
        {
            if !first {
                out.push(',');
            }
            first = false;
            write_json_string(&mut out, name);
            out.push(':');
            write_histogram(&mut out, hist);
        }
        out.push_str("}}");
        out
    }
}

fn write_aggregate_fields(out: &mut String, agg: &CellAggregate, z: f64) {
    let ci = agg.collision_ci(z);
    let _ = write!(
        out,
        ",\"runs\":{},\"exposures\":{},\"collided\":{},\"collisions\":{},\
         \"ttc_breaches\":{},\"ttc_samples\":{},\"srr_reversals\":{},\
         \"srr_rate_micro\":{},\"srr_runs\":{},\"fault_exposure_us\":{}",
        agg.runs,
        agg.exposures,
        agg.collided,
        agg.collisions,
        agg.ttc_breaches,
        agg.ttc_samples,
        agg.srr_reversals,
        agg.srr_rate_micro,
        agg.srr_runs,
        agg.fault_exposure_us
    );
    out.push_str(",\"p_collision\":");
    crate::json::write_f64(out, ci.p_hat);
    out.push_str(",\"ci_lo\":");
    crate::json::write_f64(out, ci.lo);
    out.push_str(",\"ci_hi\":");
    crate::json::write_f64(out, ci.hi);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(subject: &str, kind: &str, digest: u64) -> RunSummary {
        let mut s = RunSummary {
            scenario: "town05".into(),
            subject: subject.into(),
            kind: kind.into(),
            seed: digest ^ 0xABCD,
            digest,
            wall_ns: 1_000_000,
            ..RunSummary::default()
        };
        if kind == "faulty" {
            s.cells.push(CellSample {
                condition: "delay:25ms".into(),
                exposures: 2,
                collided: 1,
                collisions: 1,
                ttc_breaches: 3,
                ttc_samples: 50,
                srr_reversals: 12,
                srr_rate_micro: to_micro(24.5),
                srr_runs: 1,
                fault_exposure_us: 7_500_000,
            });
        }
        s.cells.push(CellSample {
            condition: format!("run:{kind}"),
            exposures: 1,
            collided: u64::from(kind == "faulty"),
            collisions: u64::from(kind == "faulty"),
            ..CellSample::default()
        });
        s.counters.insert("session.steps".into(), 100 + digest % 7);
        let hist = crate::Histogram::new();
        hist.record(10 + digest % 5);
        hist.record(u64::MAX); // exercises the u128 sum path in JSON
        s.histograms
            .insert("session.frame_age_us".into(), hist.snapshot());
        s
    }

    fn summaries() -> Vec<RunSummary> {
        let mut out = Vec::new();
        for (i, subject) in ["T1", "T2", "T3"].iter().enumerate() {
            for kind in ["training", "golden", "faulty"] {
                out.push(summary(subject, kind, 0x1000 + i as u64 * 3));
            }
        }
        out
    }

    #[test]
    fn fold_order_does_not_matter() {
        let mut fwd = CampaignStore::new();
        let mut rev = CampaignStore::new();
        let runs = summaries();
        for s in &runs {
            fwd.fold(s);
        }
        for s in runs.iter().rev() {
            rev.fold(s);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.fingerprint(), rev.fingerprint());
        assert_eq!(fwd.runs(), 9);
    }

    #[test]
    fn split_merge_equals_single_shot() {
        let runs = summaries();
        let mut whole = CampaignStore::new();
        for s in &runs {
            whole.fold(s);
        }
        for split in 0..=runs.len() {
            let (a, b) = runs.split_at(split);
            let mut left = CampaignStore::new();
            let mut right = CampaignStore::new();
            a.iter().for_each(|s| {
                left.fold(s);
            });
            b.iter().for_each(|s| {
                right.fold(s);
            });
            left.merge(&right);
            assert_eq!(left, whole, "split at {split}");
        }
    }

    #[test]
    fn refolding_a_run_is_a_no_op() {
        let mut store = CampaignStore::new();
        let s = summary("T1", "faulty", 99);
        assert!(store.fold(&s));
        let before = store.clone();
        assert!(!store.fold(&s));
        assert_eq!(store, before);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn merging_overlapping_stores_panics() {
        let mut a = CampaignStore::new();
        let mut b = CampaignStore::new();
        let s = summary("T1", "faulty", 99);
        a.fold(&s);
        b.fold(&s);
        a.merge(&b);
    }

    #[test]
    fn summary_json_roundtrips_exactly() {
        for s in summaries() {
            let line = s.to_json();
            assert!(!line.contains('\n'), "must be a single line");
            let back = RunSummary::from_json(&line).expect("parse");
            assert_eq!(back, s);
            assert_eq!(back.to_json(), line);
        }
        assert!(RunSummary::from_json("{\"scenario\":1}").is_err());
    }

    #[test]
    fn replayed_checkpoint_reproduces_the_store() {
        let runs = summaries();
        let mut native = CampaignStore::new();
        let mut stream = String::new();
        for s in &runs {
            native.fold(s);
            stream.push_str(&s.to_json());
            stream.push('\n');
        }
        let mut replayed = CampaignStore::new();
        for line in stream.lines() {
            replayed.fold(&RunSummary::from_json(line).expect("parse"));
        }
        assert_eq!(replayed, native);
        assert_eq!(replayed.fingerprint(), native.fingerprint());
    }

    #[test]
    fn risk_surface_pools_across_subjects() {
        let mut store = CampaignStore::new();
        for s in summaries() {
            store.fold(&s);
        }
        let surface = store.risk_surface(crate::Z_95);
        assert_eq!(surface.len(), 1, "one fault condition in the fixture");
        let p = &surface[0];
        assert_eq!(p.condition, "delay:25ms");
        assert_eq!(p.axis, "delay");
        assert_eq!(p.magnitude, 25);
        assert_eq!(p.aggregate.exposures, 6, "2 windows × 3 subjects");
        assert_eq!(p.aggregate.collided, 3);
        assert!(p.ci.lo <= p.ci.p_hat && p.ci.p_hat <= p.ci.hi);
        assert!((p.ci.p_hat - 0.5).abs() < 1e-12);
        // run:* cells are views, not risk points.
        assert!(store.cell("town05", "run:golden", "T1").is_some());
    }

    #[test]
    fn fingerprint_skips_wall_clock_and_fleet_content() {
        let mut a = CampaignStore::new();
        let mut b = CampaignStore::new();
        let base = summary("T1", "faulty", 7);
        let mut noisy = base.clone();
        noisy.wall_ns = 999;
        noisy.counters.insert("executor.w0.runs".into(), 3);
        let hist = crate::Histogram::new();
        hist.record(123_456);
        noisy
            .histograms
            .insert("session.stage.sim_ns".into(), hist.snapshot());
        a.fold(&base);
        b.fold(&noisy);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a, b, "the content still differs, only the print agrees");
        // …and the deterministic report omits it too, while timings keep it.
        assert_eq!(a.report_json(crate::Z_95), b.report_json(crate::Z_95));
        assert!(b.timings_json().contains("session.stage.sim_ns"));
    }

    #[test]
    fn reports_are_valid_json() {
        let mut store = CampaignStore::new();
        for s in summaries() {
            store.fold(&s);
        }
        let report = store.report_json(crate::Z_95);
        let parsed = JsonValue::parse(&report).expect("report parses");
        assert_eq!(
            parsed.get("runs").and_then(JsonValue::as_u64),
            Some(store.runs())
        );
        assert!(parsed
            .get("risk_surface")
            .and_then(JsonValue::as_arr)
            .is_some());
        let timings = store.timings_json();
        assert!(JsonValue::parse(&timings).is_ok());
    }

    #[test]
    fn pooled_cell_matches_brute_force_over_prefixes() {
        let mut store = CampaignStore::new();
        for (i, (subject, collided)) in [
            ("g0a1/p00000", 0),
            ("g0a1/p00003", 1),
            ("g0a2/p00001", 1),
            ("g2a0/p00002", 0),
        ]
        .into_iter()
        .enumerate()
        {
            let s = RunSummary {
                scenario: "town05".into(),
                subject: subject.into(),
                kind: "delay:25ms".into(),
                digest: 0x40 + i as u64,
                cells: vec![CellSample {
                    condition: "delay:25ms".into(),
                    exposures: 3,
                    collided,
                    collisions: collided,
                    ..CellSample::default()
                }],
                ..RunSummary::default()
            };
            store.fold(&s);
        }
        for prefix in ["", "g0a1/", "g0a2/", "g2a0/", "zzz/"] {
            let pooled = store.pooled_cell("town05", "delay:25ms", prefix);
            let mut expect = CellAggregate::default();
            for (sc, co, su, agg) in store.cells() {
                if sc == "town05" && co == "delay:25ms" && su.starts_with(prefix) {
                    expect.merge(agg);
                }
            }
            assert_eq!(pooled, expect, "prefix {prefix:?}");
        }
        assert_eq!(store.pooled_cell("town05", "delay:25ms", "g0a1/").runs, 2);
        assert_eq!(
            store.pooled_cell("town05", "delay:25ms", "g0a1/").collided,
            1
        );
        assert_eq!(store.pooled_cell("town05", "delay:25ms", "").runs, 4);
        assert_eq!(store.pooled_cell("town05", "loss:02pct", "").runs, 0);
    }

    #[test]
    fn micro_quantization_is_symmetric() {
        assert_eq!(to_micro(24.5), 24_500_000);
        assert_eq!(to_micro(-1.25), -1_250_000);
        assert_eq!(to_micro(0.0), 0);
    }
}
