//! Serializable per-run telemetry summary.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::Event;
use crate::hist::HistogramSnapshot;

/// Everything one run recorded, in an owned, mergeable, serializable form.
///
/// Produced by [`crate::Registry::snapshot`]; campaign runners attach one
/// next to each run record and fold them together with
/// [`RunTelemetry::merge`] for whole-campaign reporting. `BTreeMap`s keep
/// iteration (and therefore serialization and reports) deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunTelemetry {
    /// Final counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Final gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Structured events in emission order.
    pub events: Vec<Event>,
    /// Events discarded after the registry's capacity was reached.
    pub events_dropped: u64,
    /// Wall-clock nanoseconds between registry creation and snapshot.
    pub wall_elapsed_ns: u64,
}

impl RunTelemetry {
    /// True when nothing at all was recorded (the null-recorder outcome).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
            && self.events_dropped == 0
    }

    /// Final value of a counter, or 0 if it never existed.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram snapshot by name, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Steps per wall-clock second, derived from the named step counter.
    pub fn steps_per_sec(&self, step_counter: &str) -> f64 {
        if self.wall_elapsed_ns == 0 {
            return 0.0;
        }
        self.counter(step_counter) as f64 / (self.wall_elapsed_ns as f64 * 1e-9)
    }

    /// Folds `other` into `self`: counters add, gauges take the other
    /// side's value, histograms merge bucket-wise, events concatenate, and
    /// wall time accumulates (total compute time across runs).
    pub fn merge(&mut self, other: &RunTelemetry) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        for (name, snapshot) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(snapshot);
        }
        self.events.extend(other.events.iter().cloned());
        self.events_dropped += other.events_dropped;
        self.wall_elapsed_ns += other.wall_elapsed_ns;
    }

    /// A stable 64-bit fingerprint over the *deterministic* telemetry
    /// content: counters, gauges, histograms and events — excluding
    ///
    /// * every wall-clock field (`wall_elapsed_ns`, per-event `wall_ns`),
    /// * every instrument whose name ends in `_ns` (by convention those
    ///   sample wall-clock spans — stage timings, codec cost — which vary
    ///   run to run on real hardware), and
    /// * every instrument under the `executor.` prefix, which reports
    ///   fleet scheduling (queue depth, per-worker run counts) that
    ///   legitimately varies with `--jobs` / `--batch` while the campaign
    ///   digest must not.
    ///
    /// Hand-rolled FNV-1a-64 with a SplitMix64 finalizer (the same
    /// construction as `rdsim_math::StableHasher`, duplicated here because
    /// this crate is dependency-free by design). Two runs of the same seed
    /// must fingerprint identically whether they executed serially or on a
    /// parallel worker; the campaign digest folds this value in.
    pub fn fingerprint(&self) -> u64 {
        let deterministic = deterministic_instrument;
        let mut h = Fnv::new();
        let counters = || self.counters.iter().filter(|(n, _)| deterministic(n));
        h.u64(counters().count() as u64);
        for (name, value) in counters() {
            h.str(name);
            h.u64(*value);
        }
        let gauges = || self.gauges.iter().filter(|(n, _)| deterministic(n));
        h.u64(gauges().count() as u64);
        for (name, value) in gauges() {
            h.str(name);
            h.u64(value.to_bits());
        }
        let hists = || self.histograms.iter().filter(|(n, _)| deterministic(n));
        h.u64(hists().count() as u64);
        for (name, snapshot) in hists() {
            h.str(name);
            h.u64(snapshot.count);
            h.u64(snapshot.sum as u64);
            h.u64((snapshot.sum >> 64) as u64);
            h.u64(snapshot.min);
            h.u64(snapshot.max);
            // Sparse: only non-empty buckets, framed as (index, count).
            for (i, &n) in snapshot.buckets.iter().enumerate() {
                if n > 0 {
                    h.u64(i as u64);
                    h.u64(n);
                }
            }
            h.u64(u64::MAX); // bucket-list terminator
        }
        h.u64(self.events.len() as u64);
        for event in &self.events {
            h.str(&event.name);
            h.u64(event.sim_us);
            h.str(&event.note);
        }
        h.u64(self.events_dropped);
        h.finish()
    }

    /// Serializes to a self-contained JSON document. Hand-rolled because
    /// this crate is dependency-free; output is deterministic (sorted keys,
    /// fixed field order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        out.push_str("\"counters\":{");
        push_entries(&mut out, self.counters.iter(), |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, self.gauges.iter(), |out, v| {
            push_f64(out, *v);
        });
        out.push_str("},\"histograms\":{");
        push_entries(&mut out, self.histograms.iter(), |out, h| {
            let _ = write!(
                out,
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50(),
                h.p90(),
                h.p99()
            );
            // Sparse encoding: only non-empty buckets, as [index, count].
            let mut first = true;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n > 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(out, "[{i},{n}]");
                }
            }
            out.push_str("]}");
        });
        out.push_str("},\"events\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_string(&mut out, &event.name);
            let _ = write!(
                out,
                ",\"sim_us\":{},\"wall_ns\":{},\"note\":",
                event.sim_us, event.wall_ns
            );
            push_json_string(&mut out, &event.note);
            out.push('}');
        }
        let _ = write!(
            out,
            "],\"events_dropped\":{},\"wall_elapsed_ns\":{}}}",
            self.events_dropped, self.wall_elapsed_ns
        );
        out
    }

    /// Renders a human-readable report: one line per counter and gauge,
    /// a quantile table per histogram, and the event count.
    pub fn report(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("telemetry: (empty — recorder disabled)\n");
            return out;
        }
        let _ = writeln!(
            out,
            "telemetry: wall {:.3} s, {} events ({} dropped)",
            self.wall_elapsed_ns as f64 * 1e-9,
            self.events.len(),
            self.events_dropped
        );
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "  {:<34} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "histogram", "count", "mean", "p50", "p90", "p99", "max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<34} {:>9} {:>10.1} {:>10} {:>10} {:>10} {:>10}",
                    name,
                    h.count,
                    h.mean(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max
                );
            }
        }
        for (name, value) in &self.counters {
            let _ = writeln!(out, "  {name:<34} = {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "  {name:<34} = {value:.4}");
        }
        out
    }
}

/// Instrument-name prefix for fleet-level executor signals (queue depth,
/// per-worker runs completed). These describe *how the campaign was
/// scheduled*, not what any run computed, so [`RunTelemetry::fingerprint`]
/// skips them: the campaign digest stays invariant across `--jobs` /
/// `--batch` even with fleet telemetry enabled.
pub const FLEET_PREFIX: &str = "executor.";

/// True when an instrument name carries *deterministic* content — i.e. it
/// is neither a wall-clock span (`_ns` suffix) nor a fleet-scheduling
/// signal ([`FLEET_PREFIX`]). Fingerprints and campaign digests hash only
/// deterministic instruments; reports and JSON exports keep everything.
pub fn deterministic_instrument(name: &str) -> bool {
    !name.starts_with(FLEET_PREFIX) && !name.ends_with("_ns")
}

/// Minimal stable hasher backing [`RunTelemetry::fingerprint`] and the
/// campaign-store fingerprint: FNV-1a 64 over little-endian bytes with
/// length-prefixed strings, diffused through one SplitMix64 round at the
/// end.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    fn raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.raw(&v.to_le_bytes());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.raw(s.as_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        let mut z = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, V)>,
    mut push_value: impl FnMut(&mut String, V),
) {
    for (i, (key, value)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, key);
        out.push(':');
        push_value(out, value);
    }
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Registry;

    fn sample() -> RunTelemetry {
        let registry = Registry::new();
        let rec = registry.recorder();
        rec.counter("steps").add(10);
        rec.gauge("speed").set(1.5);
        rec.observe("lat_us", 100);
        rec.observe("lat_us", 200);
        rec.event("fault", 5_000, "loss=10%");
        registry.snapshot()
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let t = sample();
        let json = t.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"steps\":10"));
        assert!(json.contains("\"note\":\"loss=10%\""));
        // Everything except wall-clock fields is reproducible.
        let again = sample();
        let strip = |s: &str| {
            s.split(',')
                .filter(|f| !f.contains("wall"))
                .collect::<Vec<_>>()
                .join(",")
        };
        assert_eq!(strip(&json), strip(&again.to_json()));
    }

    #[test]
    fn json_escapes_strings() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn merge_accumulates_counters_and_histograms() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter("steps"), 20);
        assert_eq!(a.histogram("lat_us").unwrap().count, 4);
        assert_eq!(a.events.len(), 2);
    }

    #[test]
    fn fingerprint_ignores_wall_clock_but_sees_content() {
        let a = sample();
        let mut b = sample();
        b.wall_elapsed_ns = a.wall_elapsed_ns.wrapping_add(123_456);
        for event in &mut b.events {
            event.wall_ns = event.wall_ns.wrapping_add(999);
        }
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "wall-clock fields must not affect the fingerprint"
        );

        let mut c = sample();
        c.counters.insert("steps".to_owned(), 11);
        assert_ne!(a.fingerprint(), c.fingerprint());

        let mut d = sample();
        d.events[0].note = "loss=11%".to_owned();
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn fingerprint_ignores_fleet_instruments() {
        let a = sample();
        let mut b = sample();
        b.counters.insert("executor.runs_completed.w3".into(), 17);
        b.gauges.insert("executor.queue_depth".into(), 4.0);
        let mut h = HistogramSnapshot::default();
        h.merge(&{
            let hist = crate::Histogram::new();
            hist.record(250);
            hist.snapshot()
        });
        b.histograms.insert("executor.chunk_ns".into(), h);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "executor.* instruments must not affect the fingerprint"
        );
        // …but they still show up in merge/json output.
        assert!(b.to_json().contains("executor.queue_depth"));
    }

    #[test]
    fn default_is_empty_and_reports_as_such() {
        let t = RunTelemetry::default();
        assert!(t.is_empty());
        assert!(t.report().contains("empty"));
        assert_eq!(t.steps_per_sec("steps"), 0.0);
    }
}
