//! Causal per-artifact tracing: trace ids, span events, and the
//! always-on flight recorder.
//!
//! Every video frame and control command gets a [`TraceId`] at origin;
//! each pipeline hop (capture → encode → netem decision → decode →
//! display → command emit → netem → actuation) appends a [`TraceEvent`]
//! through a shared [`Tracer`] handle. Events land in a bounded
//! [`crate::TraceRing`], so tracing costs a mutexed 32-byte store per hop
//! and memory stays fixed no matter how long the run is. A snapshot of
//! the ring is a [`TraceLog`], which can window itself around a safety
//! incident or render as Chrome/Perfetto `trace_event` JSON via
//! [`TraceLog::to_chrome_json`].
//!
//! Events are stamped with **sim-time only** (µs since run start): the
//! stream is then deterministic across identical seeds, which the session
//! determinism tests rely on. Wall-clock timing lives in the telemetry
//! layer's histograms instead.

use std::fmt;
use std::sync::Arc;

use crate::ring::TraceRing;

/// Default flight-recorder bound: 64 Ki events ≈ 2 MiB, roughly the last
/// two sim-minutes of a faulty study run (~10 events per 20 ms step).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// What kind of artifact a [`TraceId`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArtifactKind {
    /// A video frame (vehicle → operator).
    Frame,
    /// A driving command (operator → vehicle).
    Command,
    /// A meta-command packet.
    Meta,
    /// A QoS telemetry packet.
    Qos,
    /// A safety incident or fault-window edge marker.
    Incident,
}

impl ArtifactKind {
    /// Short lowercase label (`"frame"`, `"cmd"`, …).
    pub fn label(self) -> &'static str {
        match self {
            ArtifactKind::Frame => "frame",
            ArtifactKind::Command => "cmd",
            ArtifactKind::Meta => "meta",
            ArtifactKind::Qos => "qos",
            ArtifactKind::Incident => "incident",
        }
    }

    fn tag(self) -> u64 {
        match self {
            ArtifactKind::Frame => 1,
            ArtifactKind::Command => 2,
            ArtifactKind::Meta => 3,
            ArtifactKind::Qos => 4,
            ArtifactKind::Incident => 5,
        }
    }

    fn from_tag(tag: u64) -> ArtifactKind {
        match tag {
            1 => ArtifactKind::Frame,
            2 => ArtifactKind::Command,
            3 => ArtifactKind::Meta,
            4 => ArtifactKind::Qos,
            _ => ArtifactKind::Incident,
        }
    }
}

/// A packed artifact identity: 8-bit kind tag + 56-bit sequence number.
///
/// The sequence number is the sender-assigned packet/incident sequence, so
/// an id minted at origin survives unchanged through the netem qdisc to
/// the consuming end — that is what stitches a lineage together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// An id for the given artifact kind and sequence number.
    pub fn new(kind: ArtifactKind, seq: u64) -> Self {
        TraceId((kind.tag() << 56) | (seq & 0x00FF_FFFF_FFFF_FFFF))
    }

    /// A video-frame id.
    pub fn frame(seq: u64) -> Self {
        TraceId::new(ArtifactKind::Frame, seq)
    }

    /// A control-command id.
    pub fn command(seq: u64) -> Self {
        TraceId::new(ArtifactKind::Command, seq)
    }

    /// An incident-marker id.
    pub fn incident(seq: u64) -> Self {
        TraceId::new(ArtifactKind::Incident, seq)
    }

    /// The artifact kind encoded in the id.
    pub fn kind(self) -> ArtifactKind {
        ArtifactKind::from_tag(self.0 >> 56)
    }

    /// The sequence number encoded in the id.
    pub fn seq(self) -> u64 {
        self.0 & 0x00FF_FFFF_FFFF_FFFF
    }

    /// The packed representation (stable across runs of the same seed).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.kind().label(), self.seq())
    }
}

/// A pipeline stage (or point decision) an artifact passed through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceStage {
    /// Frame captured by the camera sensor. `arg` = camera frame id.
    Capture,
    /// Frame encoded for transport. `arg` = encoded payload bytes.
    Encode,
    /// Packet offered to a netem qdisc. `arg` = packet metadata word.
    NetemEnqueue,
    /// Packet discarded by a loss fault. `arg` = packet metadata word.
    NetemDrop,
    /// Packet payload corrupted in flight. `arg` = packet metadata word.
    NetemCorrupt,
    /// Duplicate copy created. `arg` = packet metadata word of the copy.
    NetemDuplicate,
    /// Packet jumped the delay queue (reorder fault). `arg` = metadata.
    NetemReorder,
    /// Packet released to the receiver. `arg` = link latency in µs.
    NetemDeliver,
    /// Frame/command payload decoded successfully. `arg` = payload bytes.
    Decode,
    /// Payload failed its checksum and was rejected. `arg` = bytes.
    DecodeFailed,
    /// Frame shown on the operator display. `arg` = glass-to-glass age µs.
    Display,
    /// Operator emitted a command. `arg` = newest displayed frame seq
    /// (the causal operator-reaction link), `u64::MAX` before any frame.
    CommandEmit,
    /// Command applied by the vehicle plant. `arg` = command age in µs.
    Actuate,
    /// A fault window opened (`arg` = 1) or closed (`arg` = 0).
    FaultEdge,
    /// A safety incident. `arg` = [`incident_arg`] payload.
    Incident,
    /// Packet tail-dropped by a full finite queue (congestion, not a
    /// loss-model decision). `arg` = packet metadata word.
    NetemQueueDrop,
}

impl TraceStage {
    /// Short lowercase label used in trace exports.
    pub fn label(self) -> &'static str {
        match self {
            TraceStage::Capture => "capture",
            TraceStage::Encode => "encode",
            TraceStage::NetemEnqueue => "netem.enqueue",
            TraceStage::NetemDrop => "netem.drop",
            TraceStage::NetemCorrupt => "netem.corrupt",
            TraceStage::NetemDuplicate => "netem.duplicate",
            TraceStage::NetemReorder => "netem.reorder",
            TraceStage::NetemDeliver => "netem.deliver",
            TraceStage::Decode => "decode",
            TraceStage::DecodeFailed => "decode.failed",
            TraceStage::Display => "display",
            TraceStage::CommandEmit => "emit",
            TraceStage::Actuate => "actuate",
            TraceStage::FaultEdge => "fault.edge",
            TraceStage::Incident => "incident",
            TraceStage::NetemQueueDrop => "netem.queue_drop",
        }
    }

    /// A stable small integer for per-stage display lanes.
    pub fn lane(self) -> u32 {
        match self {
            TraceStage::Capture => 0,
            TraceStage::Encode => 1,
            TraceStage::NetemEnqueue => 2,
            TraceStage::NetemDrop => 3,
            TraceStage::NetemCorrupt => 4,
            TraceStage::NetemDuplicate => 5,
            TraceStage::NetemReorder => 6,
            TraceStage::NetemDeliver => 7,
            TraceStage::Decode => 8,
            TraceStage::DecodeFailed => 9,
            TraceStage::Display => 10,
            TraceStage::CommandEmit => 11,
            TraceStage::Actuate => 12,
            TraceStage::FaultEdge => 13,
            TraceStage::Incident => 14,
            TraceStage::NetemQueueDrop => 15,
        }
    }
}

impl fmt::Display for TraceStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One flight-recorder entry: artifact, stage, sim-time, stage detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which artifact this event belongs to.
    pub id: TraceId,
    /// Which pipeline hop or decision happened.
    pub stage: TraceStage,
    /// Simulation time of the event, µs since run start.
    pub sim_us: u64,
    /// Stage-specific detail; see the [`TraceStage`] variant docs.
    pub arg: u64,
}

/// The tracing handle threaded through the pipeline, mirroring
/// [`crate::Recorder`]: clones of a live tracer share one ring;
/// [`Tracer::null`] (also the `Default`) records nothing and costs one
/// `Option` branch per call.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    ring: Option<Arc<TraceRing>>,
}

impl Tracer {
    /// The disabled tracer.
    pub fn null() -> Self {
        Tracer { ring: None }
    }

    /// A live tracer over a fresh ring of [`DEFAULT_TRACE_CAPACITY`].
    pub fn flight_recorder() -> Self {
        Tracer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A live tracer over a fresh ring bounded at `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            ring: Some(Arc::new(TraceRing::with_capacity(capacity))),
        }
    }

    /// True when this tracer writes into a ring.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// Records one event. No-op on a null tracer.
    #[inline]
    pub fn record(&self, id: TraceId, stage: TraceStage, sim_us: u64, arg: u64) {
        if let Some(ring) = &self.ring {
            ring.push(TraceEvent {
                id,
                stage,
                sim_us,
                arg,
            });
        }
    }

    /// Events currently retained (0 when null).
    pub fn len(&self) -> usize {
        self.ring.as_ref().map_or(0, |r| r.len())
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pre-grows the ring's storage for `events` more events (clamped to
    /// the ring bound). No-op on a null tracer. Sessions of known length
    /// call this once up front so steady-state tracing never allocates.
    pub fn preallocate(&self, events: usize) {
        if let Some(ring) = &self.ring {
            ring.reserve(events);
        }
    }

    /// Events overwritten by the bound so far (0 when null).
    pub fn overwritten(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.overwritten())
    }

    /// Snapshots the ring into an owned [`TraceLog`].
    pub fn log(&self) -> TraceLog {
        let mut log = TraceLog::default();
        self.log_into(&mut log);
        log
    }

    /// Snapshots the ring into a caller-owned [`TraceLog`], clearing and
    /// reusing its event buffer — the repeated-export path (forensics
    /// dossiers snapshot once per run into one recycled log, keeping the
    /// export loop off the allocator once the buffer has grown).
    pub fn log_into(&self, log: &mut TraceLog) {
        log.events.clear();
        match &self.ring {
            Some(ring) => {
                ring.snapshot_into(&mut log.events);
                log.overwritten = ring.overwritten();
                log.capacity = ring.capacity();
            }
            None => {
                log.overwritten = 0;
                log.capacity = 0;
            }
        }
    }
}

/// An owned snapshot of a flight-recorder ring.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events lost to the ring bound before this snapshot.
    pub overwritten: u64,
    /// The ring bound (0 for the null-tracer snapshot).
    pub capacity: usize,
}

impl TraceLog {
    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.overwritten == 0
    }

    /// The events with `from_us <= sim_us <= to_us`, as a new log — the
    /// incident-dump extraction.
    pub fn window(&self, from_us: u64, to_us: u64) -> TraceLog {
        TraceLog {
            events: self
                .events
                .iter()
                .filter(|e| e.sim_us >= from_us && e.sim_us <= to_us)
                .copied()
                .collect(),
            overwritten: self.overwritten,
            capacity: self.capacity,
        }
    }

    /// All events of one artifact, in recorded order.
    pub fn lineage(&self, id: TraceId) -> Vec<TraceEvent> {
        self.events.iter().filter(|e| e.id == id).copied().collect()
    }

    /// Number of distinct artifacts of `kind` whose lineage contains both
    /// `first` and `last` — e.g. `(Frame, Capture, Display)` counts frames
    /// traced end to end.
    pub fn complete_lineages(
        &self,
        kind: ArtifactKind,
        first: TraceStage,
        last: TraceStage,
    ) -> u64 {
        use std::collections::BTreeMap;
        let mut seen: BTreeMap<TraceId, (bool, bool)> = BTreeMap::new();
        for e in &self.events {
            if e.id.kind() != kind {
                continue;
            }
            let entry = seen.entry(e.id).or_default();
            if e.stage == first {
                entry.0 = true;
            }
            if e.stage == last {
                entry.1 = true;
            }
        }
        seen.values().filter(|(a, b)| *a && *b).count() as u64
    }

    /// Renders the log as Chrome/Perfetto `trace_event` JSON.
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::chrome_trace_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_packs_kind_and_seq() {
        for (kind, seq) in [
            (ArtifactKind::Frame, 0u64),
            (ArtifactKind::Command, 123),
            (ArtifactKind::Meta, 7),
            (ArtifactKind::Qos, 1 << 40),
            (ArtifactKind::Incident, 0x00FF_FFFF_FFFF_FFFF),
        ] {
            let id = TraceId::new(kind, seq);
            assert_eq!(id.kind(), kind);
            assert_eq!(id.seq(), seq);
        }
        assert_eq!(TraceId::frame(12).to_string(), "frame#12");
        assert_eq!(TraceId::command(3).to_string(), "cmd#3");
        assert_ne!(TraceId::frame(1).raw(), TraceId::command(1).raw());
    }

    #[test]
    fn null_tracer_is_free_and_empty() {
        let t = Tracer::null();
        assert!(!t.enabled());
        t.record(TraceId::frame(1), TraceStage::Capture, 0, 0);
        assert!(t.is_empty());
        assert_eq!(t.overwritten(), 0);
        assert!(t.log().is_empty());
    }

    #[test]
    fn clones_share_the_ring() {
        let t = Tracer::with_capacity(16);
        let u = t.clone();
        t.record(TraceId::frame(1), TraceStage::Capture, 10, 0);
        u.record(TraceId::frame(1), TraceStage::Display, 20, 0);
        assert_eq!(t.len(), 2);
        let log = u.log();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.capacity, 16);
        assert_eq!(log.lineage(TraceId::frame(1)).len(), 2);
    }

    #[test]
    fn window_filters_by_sim_time() {
        let t = Tracer::with_capacity(16);
        for us in [5u64, 10, 15, 20] {
            t.record(TraceId::frame(us), TraceStage::Capture, us, 0);
        }
        let w = t.log().window(10, 15);
        let times: Vec<u64> = w.events.iter().map(|e| e.sim_us).collect();
        assert_eq!(times, vec![10, 15]);
    }

    #[test]
    fn complete_lineages_requires_both_ends() {
        let t = Tracer::with_capacity(64);
        // Frame 0: full lineage. Frame 1: dropped after capture.
        t.record(TraceId::frame(0), TraceStage::Capture, 0, 0);
        t.record(TraceId::frame(0), TraceStage::Display, 40_000, 0);
        t.record(TraceId::frame(1), TraceStage::Capture, 40_000, 0);
        t.record(TraceId::frame(1), TraceStage::NetemDrop, 40_100, 0);
        let log = t.log();
        assert_eq!(
            log.complete_lineages(
                ArtifactKind::Frame,
                TraceStage::Capture,
                TraceStage::Display
            ),
            1
        );
        assert_eq!(
            log.complete_lineages(
                ArtifactKind::Command,
                TraceStage::CommandEmit,
                TraceStage::Actuate
            ),
            0
        );
    }
}
