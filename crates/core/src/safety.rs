//! Safety measures for the vehicle subsystem.
//!
//! The paper's purpose is methodological: "to investigate which safety
//! measures are adequate, e.g., how they should be designed and when they
//! need to intervene" (§I) — its experiments deliberately run *without*
//! any measures. This module supplies the measures a production RDS would
//! deploy, so the same HIL methodology can evaluate them (the ablation
//! experiments in `rdsim-experiments` and the `safety_measures` example
//! do exactly that):
//!
//! * [`CommandWatchdog`] — neutralise the controls when no valid command
//!   has arrived for a bound;
//! * [`DegradedModeLimiter`] — cap speed while measured link quality is
//!   poor;
//! * [`SafeStop`] — brake to a halt after prolonged link silence;
//! * [`SafetyStack`] — ordered composition of measures, with an
//!   intervention log.
//!
//! Measures act on the vehicle side only, on information genuinely
//! available there ([`QosEstimate`]): they never peek at the operator's
//! intent or the simulator's ground truth.

use rdsim_units::{MetersPerSecond, Ratio, SimDuration, SimTime};
use rdsim_vehicle::ControlInput;
use serde::{Deserialize, Serialize};

/// Link-quality estimate as observable from the vehicle subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosEstimate {
    /// Time since the last valid command arrived (`None` before the first
    /// command).
    pub command_age: Option<SimDuration>,
    /// Estimated command loss over the recent window, from sequence-number
    /// gaps.
    pub command_loss: Ratio,
    /// Commands received so far.
    pub commands_received: u64,
}

impl QosEstimate {
    /// A healthy-link estimate (used before any traffic has flowed).
    pub fn healthy() -> Self {
        QosEstimate {
            command_age: None,
            command_loss: Ratio::ZERO,
            commands_received: 0,
        }
    }
}

/// A recorded intervention by a safety measure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Intervention {
    /// When the measure (first) fired.
    pub time: SimTime,
    /// The measure's name.
    pub measure: String,
}

/// A vehicle-side safety measure: may override the operator's command
/// based on observable link quality.
pub trait SafetyMeasure: std::fmt::Debug + Send {
    /// The measure's display name.
    fn name(&self) -> &str;

    /// Filters the command about to be applied. Returning `None` means
    /// "no intervention"; `Some(cmd)` replaces the command.
    fn filter(
        &mut self,
        now: SimTime,
        qos: &QosEstimate,
        command: ControlInput,
        speed: MetersPerSecond,
    ) -> Option<ControlInput>;
}

/// Neutralises the controls when the command stream goes quiet: steering
/// centred, pedals released. The mildest measure — the vehicle coasts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandWatchdog {
    /// Command age beyond which the watchdog fires.
    pub timeout: SimDuration,
}

impl CommandWatchdog {
    /// Creates a watchdog with the given timeout.
    pub fn new(timeout: SimDuration) -> Self {
        CommandWatchdog { timeout }
    }
}

impl SafetyMeasure for CommandWatchdog {
    fn name(&self) -> &str {
        "command-watchdog"
    }

    fn filter(
        &mut self,
        _now: SimTime,
        qos: &QosEstimate,
        _command: ControlInput,
        _speed: MetersPerSecond,
    ) -> Option<ControlInput> {
        match qos.command_age {
            Some(age) if age > self.timeout => Some(ControlInput::COAST),
            _ => None,
        }
    }
}

/// Caps the vehicle's speed while measured command loss exceeds a
/// threshold: throttle is cut above the cap and gentle braking shaves
/// excess speed. Keeps the vehicle drivable in degraded mode, as remote
/// operation guidelines (e.g. BSI PAS 1883-style ODD contraction)
/// recommend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedModeLimiter {
    /// Loss level that triggers degraded mode.
    pub trigger_loss: Ratio,
    /// Speed cap while degraded.
    pub speed_cap: MetersPerSecond,
}

impl DegradedModeLimiter {
    /// Creates a limiter.
    pub fn new(trigger_loss: Ratio, speed_cap: MetersPerSecond) -> Self {
        DegradedModeLimiter {
            trigger_loss,
            speed_cap,
        }
    }
}

impl SafetyMeasure for DegradedModeLimiter {
    fn name(&self) -> &str {
        "degraded-mode-limiter"
    }

    fn filter(
        &mut self,
        _now: SimTime,
        qos: &QosEstimate,
        command: ControlInput,
        speed: MetersPerSecond,
    ) -> Option<ControlInput> {
        if qos.command_loss < self.trigger_loss {
            return None;
        }
        if speed <= self.speed_cap {
            // Below the cap: allow the command but clamp throttle so the
            // cap is approached smoothly.
            if speed.get() > self.speed_cap.get() * 0.9 && command.throttle.get() > 0.2 {
                let mut c = command;
                c.throttle = Ratio::new(0.2);
                return Some(c);
            }
            return None;
        }
        // Above the cap: cut throttle, brake gently, keep steering.
        let mut c = command;
        c.throttle = Ratio::ZERO;
        c.brake = Ratio::new(c.brake.get().max(0.3));
        Some(c)
    }
}

/// Brings the vehicle to a controlled stop after prolonged link silence —
/// the minimal-risk manoeuvre of last resort.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafeStop {
    /// Command age beyond which the stop engages.
    pub timeout: SimDuration,
    /// Braking intensity while stopping.
    pub brake: Ratio,
    engaged: bool,
}

impl SafeStop {
    /// Creates a safe-stop measure.
    pub fn new(timeout: SimDuration) -> Self {
        SafeStop {
            timeout,
            brake: Ratio::new(0.5),
            engaged: false,
        }
    }

    /// `true` once the stop has engaged (it latches until a fresh command
    /// arrives).
    pub fn engaged(&self) -> bool {
        self.engaged
    }
}

impl SafetyMeasure for SafeStop {
    fn name(&self) -> &str {
        "safe-stop"
    }

    fn filter(
        &mut self,
        _now: SimTime,
        qos: &QosEstimate,
        _command: ControlInput,
        speed: MetersPerSecond,
    ) -> Option<ControlInput> {
        match qos.command_age {
            Some(age) if age > self.timeout => {
                self.engaged = true;
            }
            Some(_) => {
                // Fresh command: release the latch.
                self.engaged = false;
            }
            None => {}
        }
        if self.engaged {
            let mut c = ControlInput::COAST;
            c.brake = self.brake;
            if speed.get() < 0.2 {
                c = c.with_handbrake(true);
            }
            Some(c)
        } else {
            None
        }
    }
}

/// An ordered stack of measures. Later measures see (and may override)
/// the output of earlier ones; the most defensive measure should be last.
#[derive(Debug, Default)]
pub struct SafetyStack {
    measures: Vec<Box<dyn SafetyMeasure>>,
    interventions: Vec<Intervention>,
    active: std::collections::BTreeSet<String>,
}

impl SafetyStack {
    /// An empty stack (no measures — the paper's §V configuration).
    pub fn new() -> Self {
        SafetyStack::default()
    }

    /// Adds a measure to the end of the stack.
    pub fn push(mut self, measure: Box<dyn SafetyMeasure>) -> Self {
        self.measures.push(measure);
        self
    }

    /// Number of measures installed.
    pub fn len(&self) -> usize {
        self.measures.len()
    }

    /// `true` if no measures are installed.
    pub fn is_empty(&self) -> bool {
        self.measures.is_empty()
    }

    /// Interventions recorded so far (one per measure per engagement
    /// episode).
    pub fn interventions(&self) -> &[Intervention] {
        &self.interventions
    }

    /// Applies the stack; returns the (possibly overridden) command.
    pub fn apply(
        &mut self,
        now: SimTime,
        qos: &QosEstimate,
        mut command: ControlInput,
        speed: MetersPerSecond,
    ) -> ControlInput {
        for measure in &mut self.measures {
            match measure.filter(now, qos, command, speed) {
                Some(overridden) => {
                    if self.active.insert(measure.name().to_owned()) {
                        self.interventions.push(Intervention {
                            time: now,
                            measure: measure.name().to_owned(),
                        });
                    }
                    command = overridden;
                }
                None => {
                    self.active.remove(measure.name());
                }
            }
        }
        command
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qos(age_ms: Option<u64>, loss_pct: f64) -> QosEstimate {
        QosEstimate {
            command_age: age_ms.map(SimDuration::from_millis),
            command_loss: Ratio::from_percent(loss_pct),
            commands_received: 100,
        }
    }

    #[test]
    fn watchdog_fires_on_stale_commands() {
        let mut w = CommandWatchdog::new(SimDuration::from_millis(200));
        let cmd = ControlInput::full_throttle();
        let v = MetersPerSecond::new(10.0);
        assert_eq!(w.filter(SimTime::ZERO, &qos(Some(100), 0.0), cmd, v), None);
        assert_eq!(
            w.filter(SimTime::ZERO, &qos(Some(201), 0.0), cmd, v),
            Some(ControlInput::COAST)
        );
        // No command ever: the operator hasn't connected — do not fight
        // the (neutral) default.
        assert_eq!(w.filter(SimTime::ZERO, &qos(None, 0.0), cmd, v), None);
    }

    #[test]
    fn limiter_engages_on_loss() {
        let mut l = DegradedModeLimiter::new(Ratio::from_percent(5.0), MetersPerSecond::new(6.0));
        let cmd = ControlInput::new(0.8, 0.0, 0.2);
        // Healthy link: untouched.
        assert_eq!(
            l.filter(
                SimTime::ZERO,
                &qos(Some(20), 1.0),
                cmd,
                MetersPerSecond::new(12.0)
            ),
            None
        );
        // Lossy link, above cap: throttle cut, brake applied, steering kept.
        let out = l
            .filter(
                SimTime::ZERO,
                &qos(Some(20), 8.0),
                cmd,
                MetersPerSecond::new(12.0),
            )
            .expect("intervenes");
        assert_eq!(out.throttle, Ratio::ZERO);
        assert!(out.brake.get() >= 0.3);
        assert_eq!(out.steer, 0.2);
        // Lossy link, well below cap: untouched.
        assert_eq!(
            l.filter(
                SimTime::ZERO,
                &qos(Some(20), 8.0),
                cmd,
                MetersPerSecond::new(3.0)
            ),
            None
        );
        // Near the cap: throttle softened.
        let near = l
            .filter(
                SimTime::ZERO,
                &qos(Some(20), 8.0),
                cmd,
                MetersPerSecond::new(5.8),
            )
            .expect("softens");
        assert!((near.throttle.get() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn safe_stop_latches_and_releases() {
        let mut s = SafeStop::new(SimDuration::from_millis(500));
        let cmd = ControlInput::full_throttle();
        assert_eq!(
            s.filter(
                SimTime::ZERO,
                &qos(Some(100), 0.0),
                cmd,
                MetersPerSecond::new(10.0)
            ),
            None
        );
        assert!(!s.engaged());
        let out = s
            .filter(
                SimTime::ZERO,
                &qos(Some(600), 0.0),
                cmd,
                MetersPerSecond::new(10.0),
            )
            .expect("engages");
        assert!(s.engaged());
        assert_eq!(out.throttle, Ratio::ZERO);
        assert!(out.brake.get() > 0.0);
        // At standstill: handbrake.
        let held = s
            .filter(
                SimTime::ZERO,
                &qos(Some(700), 0.0),
                cmd,
                MetersPerSecond::new(0.1),
            )
            .expect("holds");
        assert!(held.handbrake);
        // Fresh command releases the latch.
        assert_eq!(
            s.filter(
                SimTime::ZERO,
                &qos(Some(10), 0.0),
                cmd,
                MetersPerSecond::new(0.1)
            ),
            None
        );
        assert!(!s.engaged());
    }

    #[test]
    fn stack_composes_and_logs_interventions() {
        let mut stack = SafetyStack::new()
            .push(Box::new(DegradedModeLimiter::new(
                Ratio::from_percent(5.0),
                MetersPerSecond::new(6.0),
            )))
            .push(Box::new(SafeStop::new(SimDuration::from_millis(500))));
        assert_eq!(stack.len(), 2);
        assert!(!stack.is_empty());

        // Lossy but alive: limiter fires, safe-stop does not.
        let out = stack.apply(
            SimTime::from_secs(1),
            &qos(Some(50), 10.0),
            ControlInput::full_throttle(),
            MetersPerSecond::new(12.0),
        );
        assert_eq!(out.throttle, Ratio::ZERO);
        assert_eq!(stack.interventions().len(), 1);
        assert_eq!(stack.interventions()[0].measure, "degraded-mode-limiter");

        // Sustained intervention logs only once per episode.
        stack.apply(
            SimTime::from_secs(2),
            &qos(Some(50), 10.0),
            ControlInput::full_throttle(),
            MetersPerSecond::new(12.0),
        );
        assert_eq!(stack.interventions().len(), 1);

        // Silence: safe-stop (last) wins over the limiter's output.
        let out = stack.apply(
            SimTime::from_secs(3),
            &qos(Some(800), 10.0),
            ControlInput::full_throttle(),
            MetersPerSecond::new(12.0),
        );
        assert!(out.brake.get() >= 0.5);
        assert_eq!(stack.interventions().len(), 2);

        // Recovery: a new episode re-logs.
        stack.apply(
            SimTime::from_secs(4),
            &qos(Some(10), 0.0),
            ControlInput::COAST,
            MetersPerSecond::new(2.0),
        );
        let out = stack.apply(
            SimTime::from_secs(5),
            &qos(Some(900), 0.0),
            ControlInput::COAST,
            MetersPerSecond::new(2.0),
        );
        assert!(out.brake.get() > 0.0);
        assert_eq!(stack.interventions().len(), 3);
    }

    #[test]
    fn empty_stack_is_transparent() {
        let mut stack = SafetyStack::new();
        let cmd = ControlInput::new(0.4, 0.1, -0.2);
        assert_eq!(
            stack.apply(
                SimTime::ZERO,
                &qos(Some(999), 50.0),
                cmd,
                MetersPerSecond::new(20.0)
            ),
            cmd
        );
        assert!(stack.interventions().is_empty());
    }
}
