//! Wire format for driving commands (operator → vehicle).
//!
//! Commands are small fixed-size packets, checksummed like the video
//! frames so corruption faults are detected rather than silently steering
//! the car — mirroring how any sane teleoperation protocol CRCs its
//! control channel.

use bytes::Bytes;
use rdsim_vehicle::ControlInput;
use std::fmt;

/// Size of an encoded command packet on the wire. Real remote-driving
/// command packets are tens of bytes (CRC, sequence, timestamps, axes).
pub const COMMAND_PACKET_BYTES: usize = 64;

const MAGIC: &[u8; 4] = b"RDSC";
const VERSION: u8 = 1;

/// Error from [`decode_command`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandCodecError {
    /// Buffer too small.
    Truncated,
    /// Wrong magic/version.
    BadHeader,
    /// Checksum failure — corrupted in flight.
    ChecksumMismatch,
}

impl fmt::Display for CommandCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandCodecError::Truncated => f.write_str("command truncated"),
            CommandCodecError::BadHeader => f.write_str("bad command header"),
            CommandCodecError::ChecksumMismatch => f.write_str("command checksum mismatch"),
        }
    }
}

impl std::error::Error for CommandCodecError {}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811C_9DC5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Encodes a command with its sequence number into a fixed-size packet.
pub fn encode_command(seq: u64, control: &ControlInput) -> Bytes {
    let mut out = Vec::with_capacity(COMMAND_PACKET_BYTES);
    encode_command_into(seq, control, &mut out);
    Bytes::from(out)
}

/// Encodes a command directly into `out` (cleared first), producing
/// byte-for-byte the packet of [`encode_command`]. Allocation-free when
/// `out` has [`COMMAND_PACKET_BYTES`] of capacity — the body is written
/// once with a checksum placeholder that is patched afterwards.
pub fn encode_command_into(seq: u64, control: &ControlInput, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&[0u8; 4]); // checksum, patched below
    let body_start = out.len();
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&control.throttle.get().to_bits().to_le_bytes());
    out.extend_from_slice(&control.brake.get().to_bits().to_le_bytes());
    out.extend_from_slice(&control.steer.to_bits().to_le_bytes());
    out.push(u8::from(control.reverse));
    out.push(u8::from(control.handbrake));
    let check = fnv1a(&out[body_start..]);
    out[body_start - 4..body_start].copy_from_slice(&check.to_le_bytes());
    out.resize(COMMAND_PACKET_BYTES, 0);
}

/// [`encode_command_into`] a buffer checked out of `pool`, frozen into a
/// [`Bytes`] payload. Steady state this performs zero heap allocations.
pub fn encode_command_pooled(seq: u64, control: &ControlInput, pool: &bytes::BufPool) -> Bytes {
    let mut buf = pool.checkout();
    encode_command_into(seq, control, buf.buf());
    buf.freeze()
}

/// Decodes a command packet.
///
/// # Errors
///
/// Returns [`CommandCodecError`] for truncated, malformed or corrupted
/// packets. The decoded control is sanitised (clamped into valid ranges).
pub fn decode_command(payload: &[u8]) -> Result<(u64, ControlInput), CommandCodecError> {
    const BODY_LEN: usize = 8 + 8 + 8 + 8 + 1 + 1;
    if payload.len() < 9 + BODY_LEN {
        return Err(CommandCodecError::Truncated);
    }
    if &payload[0..4] != MAGIC || payload[4] != VERSION {
        return Err(CommandCodecError::BadHeader);
    }
    let check = u32::from_le_bytes(payload[5..9].try_into().expect("len 4"));
    let body = &payload[9..9 + BODY_LEN];
    if fnv1a(body) != check {
        return Err(CommandCodecError::ChecksumMismatch);
    }
    let seq = u64::from_le_bytes(body[0..8].try_into().expect("len 8"));
    let f = |range: std::ops::Range<usize>| {
        f64::from_bits(u64::from_le_bytes(body[range].try_into().expect("len 8")))
    };
    let control = ControlInput {
        throttle: rdsim_units::Ratio::new(f(8..16)),
        brake: rdsim_units::Ratio::new(f(16..24)),
        steer: f(24..32),
        reverse: body[32] != 0,
        handbrake: body[33] != 0,
    }
    .sanitized();
    Ok((seq, control))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip() {
        let c = ControlInput::new(0.7, 0.1, -0.35).with_reverse(false);
        let bytes = encode_command(42, &c);
        assert_eq!(bytes.len(), COMMAND_PACKET_BYTES);
        let (seq, back) = decode_command(&bytes).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(back, c);
    }

    #[test]
    fn roundtrip_flags() {
        let c = ControlInput::new(0.0, 0.0, 0.0)
            .with_reverse(true)
            .with_handbrake(true);
        let (_, back) = decode_command(&encode_command(7, &c)).unwrap();
        assert!(back.reverse && back.handbrake);
    }

    #[test]
    fn detects_corruption() {
        let bytes = encode_command(1, &ControlInput::full_throttle());
        let mut owned = bytes.to_vec();
        owned[20] ^= 0x01; // flip a bit in the throttle field
        assert_eq!(
            decode_command(&owned).unwrap_err(),
            CommandCodecError::ChecksumMismatch
        );
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            decode_command(&[]).unwrap_err(),
            CommandCodecError::Truncated
        );
        assert_eq!(
            decode_command(&[0u8; COMMAND_PACKET_BYTES]).unwrap_err(),
            CommandCodecError::BadHeader
        );
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!CommandCodecError::Truncated.to_string().is_empty());
        assert!(!CommandCodecError::BadHeader.to_string().is_empty());
        assert!(!CommandCodecError::ChecksumMismatch.to_string().is_empty());
    }

    proptest! {
        #[test]
        fn roundtrip_random(t in 0.0f64..1.0, b in 0.0f64..1.0, s in -1.0f64..1.0, seq in 0u64..u64::MAX) {
            let c = ControlInput::new(t, b, s);
            let (seq2, back) = decode_command(&encode_command(seq, &c)).unwrap();
            prop_assert_eq!(seq2, seq);
            prop_assert_eq!(back, c);
        }

        #[test]
        fn decode_never_panics(data in proptest::collection::vec(proptest::num::u8::ANY, 0..128)) {
            let _ = decode_command(&data);
        }
    }
}
