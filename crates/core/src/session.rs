//! The HIL session: vehicle ↔ network ↔ operator in simulated time.
//!
//! Since the pipeline refactor, [`RdsSession`] is a thin composition: it
//! owns the shared session state ([`SessionCore`], crate-private), the
//! clock and the run log, and advances by running an explicit list of
//! [`Stage`]s in order (see [`crate::pipeline`] for the stage catalog and
//! [`RdsSession::default_stages`] for the default order).

use crate::pipeline::{
    ActuateStage, CaptureStage, DisplayStage, DownlinkStage, FaultWindowStage, LoggingStage,
    OperatorStage, SafetyStage, Stage, StageContext, StepScratch, UplinkStage, VehicleStage,
};
use crate::{
    EgoSample, IncidentKind, IncidentMark, InfrastructureSubsystem, LeadObservation,
    OperatorSubsystem, OtherSample, RunLog,
};
use rdsim_netem::{
    DuplexLink, FaultInjector, InjectionAction, InjectionWindow, NetemConfig, TraceSchedule,
};
use rdsim_obs::{Counter, Histogram, Recorder, Timeline, TraceId, TraceStage, Tracer};
use rdsim_simulator::{ActorKind, CameraConfig, SimulatorServer, World};
use rdsim_units::{Meters, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Session configuration.
#[derive(Debug, Clone)]
pub struct RdsSessionConfig {
    /// Fixed simulation step (also the command rate: one command per step).
    pub dt: SimDuration,
    /// Camera configuration for the vehicle's video feed.
    pub camera: CameraConfig,
    /// Horizon for logging lead-vehicle observations.
    pub lead_log_horizon: Meters,
    /// Optional infrastructure subsystem augmenting the operator's view.
    pub infrastructure: Option<InfrastructureSubsystem>,
    /// Telemetry recorder. Defaults to the null recorder, which keeps the
    /// session's own counters working but records nothing else.
    pub recorder: Recorder,
    /// Causal tracer. Defaults to the always-on flight recorder
    /// ([`Tracer::flight_recorder`]): a bounded overwrite-oldest ring that
    /// keeps the most recent trace events at negligible cost, so the run-up
    /// to any incident can be dumped after the fact. [`Tracer::null`]
    /// disables tracing entirely.
    pub tracer: Tracer,
    /// Record a time-resolved [`Timeline`] (1 s windows of integer
    /// aggregates: glass-to-glass latency decomposition, per-direction
    /// link counters, min gated TTC, steering reversals, speed, fault
    /// bitmask). Off by default; the campaign digests exclude it, so
    /// enabling it never perturbs golden output.
    pub timeline: bool,
}

impl Default for RdsSessionConfig {
    /// 50 Hz stepping/commands, the paper's 25–30 fps camera, 150 m lead
    /// logging horizon (metrics gate at 100 m downstream).
    fn default() -> Self {
        RdsSessionConfig {
            dt: SimDuration::from_millis(20),
            camera: CameraConfig::default(),
            lead_log_horizon: Meters::new(150.0),
            infrastructure: None,
            recorder: Recorder::null(),
            tracer: Tracer::flight_recorder(),
            timeline: false,
        }
    }
}

/// Transport-level counters for a session.
///
/// Since the telemetry layer landed this is a *read-out view*: the live
/// tallies are [`rdsim_obs::Counter`]s held by the session (and shared with
/// its recorder's registry, when one is attached); [`RdsSession::stats`]
/// materialises them into this struct. The serialized shape is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SessionStats {
    /// Video frames sent by the vehicle subsystem.
    pub frames_sent: u64,
    /// Frames decoded and shown at the station.
    pub frames_delivered: u64,
    /// Frames that arrived but failed their checksum.
    pub frames_corrupted: u64,
    /// Commands sent by the station.
    pub commands_sent: u64,
    /// Commands applied by the vehicle.
    pub commands_delivered: u64,
    /// Commands that arrived corrupted and were rejected.
    pub commands_corrupted: u64,
}

/// The session's instrument handles, resolved once at construction.
///
/// The six transport counters double as the backing store of
/// [`SessionStats`], so they are always functional: with a null recorder
/// they are detached (cheap atomics nobody else sees), with a live one they
/// appear in the run's `RunTelemetry` under the same names.
#[derive(Debug)]
pub(crate) struct SessionObs {
    pub(crate) frames_sent: Counter,
    pub(crate) frames_delivered: Counter,
    pub(crate) frames_corrupted: Counter,
    pub(crate) commands_sent: Counter,
    pub(crate) commands_delivered: Counter,
    pub(crate) commands_corrupted: Counter,
    pub(crate) steps: Counter,
    /// Packet accounting split by whether a fault rule was active when the
    /// packet was offered / delivered / dropped / rejected.
    win_in_sent: Counter,
    win_in_delivered: Counter,
    win_in_dropped: Counter,
    win_in_corrupted: Counter,
    win_out_sent: Counter,
    win_out_delivered: Counter,
    win_out_dropped: Counter,
    win_out_corrupted: Counter,
    /// Glass-to-glass frame age at display (capture → decode), µs.
    /// Handles held only while a live recorder is attached, so the
    /// disabled path records nothing.
    pub(crate) frame_age_us: Option<std::sync::Arc<Histogram>>,
    /// Command age at application (station send → vehicle apply), µs.
    pub(crate) command_age_us: Option<std::sync::Arc<Histogram>>,
}

impl SessionObs {
    fn new(recorder: &Recorder) -> Self {
        SessionObs {
            frames_sent: recorder.counter("session.frames_sent"),
            frames_delivered: recorder.counter("session.frames_delivered"),
            frames_corrupted: recorder.counter("session.frames_corrupted"),
            commands_sent: recorder.counter("session.commands_sent"),
            commands_delivered: recorder.counter("session.commands_delivered"),
            commands_corrupted: recorder.counter("session.commands_corrupted"),
            steps: recorder.counter("session.steps"),
            win_in_sent: recorder.counter("session.fault_window.inside.sent"),
            win_in_delivered: recorder.counter("session.fault_window.inside.delivered"),
            win_in_dropped: recorder.counter("session.fault_window.inside.dropped"),
            win_in_corrupted: recorder.counter("session.fault_window.inside.corrupted"),
            win_out_sent: recorder.counter("session.fault_window.outside.sent"),
            win_out_delivered: recorder.counter("session.fault_window.outside.delivered"),
            win_out_dropped: recorder.counter("session.fault_window.outside.dropped"),
            win_out_corrupted: recorder.counter("session.fault_window.outside.corrupted"),
            frame_age_us: recorder
                .enabled()
                .then(|| recorder.histogram("session.frame_age_us")),
            command_age_us: recorder
                .enabled()
                .then(|| recorder.histogram("session.command_age_us")),
        }
    }

    /// The `(sent, delivered, dropped, corrupted)` counters for the given
    /// fault-window side.
    pub(crate) fn window(&self, inside: bool) -> (&Counter, &Counter, &Counter, &Counter) {
        if inside {
            (
                &self.win_in_sent,
                &self.win_in_delivered,
                &self.win_in_dropped,
                &self.win_in_corrupted,
            )
        } else {
            (
                &self.win_out_sent,
                &self.win_out_delivered,
                &self.win_out_dropped,
                &self.win_out_corrupted,
            )
        }
    }
}

/// The shared session state every [`Stage`] advances: plant, links, fault
/// injector, telemetry, tracing, QoS estimation and the run log.
///
/// Crate-private on purpose — external stages go through
/// [`StageContext`]'s accessors, which keeps the invariants (sequence
/// counters, incident bookkeeping) inside this module.
#[derive(Debug)]
pub(crate) struct SessionCore {
    pub(crate) server: SimulatorServer,
    pub(crate) link: DuplexLink,
    pub(crate) injector: FaultInjector,
    pub(crate) dt: SimDuration,
    pub(crate) lead_log_horizon: Meters,
    pub(crate) infrastructure: Option<InfrastructureSubsystem>,
    pub(crate) log: RunLog,
    pub(crate) recorder: Recorder,
    pub(crate) tracer: Tracer,
    pub(crate) obs: SessionObs,
    /// Injection-log entries already mirrored as recorder events.
    pub(crate) fault_events_seen: usize,
    pub(crate) frame_seq: u64,
    pub(crate) cmd_seq: u64,
    /// Incident marks emitted so far (moved into the log on completion).
    pub(crate) incidents: Vec<IncidentMark>,
    /// Sequence for incident trace ids.
    pub(crate) incident_seq: u64,
    /// Whether the previous sample was inside a TTC breach (edge detector).
    pub(crate) ttc_breached: bool,
    /// Sequence number of the newest frame shown to the operator — the
    /// causal antecedent stamped onto every emitted command.
    pub(crate) last_displayed_frame: Option<u64>,
    pub(crate) safety: Option<crate::safety::SafetyStack>,
    /// Pool backing command-packet payloads, slot-sized to the fixed
    /// command packet so steady-state emits never allocate.
    pub(crate) cmd_pool: bytes::BufPool,
    pub(crate) last_cmd_received_at: Option<SimTime>,
    pub(crate) highest_cmd_seq: Option<u64>,
    /// Sliding delivery/miss window for the vehicle-side loss estimate.
    pub(crate) cmd_window: std::collections::VecDeque<bool>,
    /// Time-resolved per-window aggregates (None unless configured).
    pub(crate) timeline: Option<Timeline>,
    /// Previous cumulative link tallies + incremental SRR state backing
    /// the timeline's per-tick deltas.
    pub(crate) tl_taps: TimelineTaps,
}

/// Per-tick bookkeeping for the timeline: the previous cumulative link
/// tallies (so each tick attributes exactly its delta to the current
/// window) and the incremental steering-reversal hysteresis state.
#[derive(Debug, Default)]
pub(crate) struct TimelineTaps {
    up_dropped: u64,
    up_queue_dropped: u64,
    up_duplicated: u64,
    up_reordered: u64,
    down_dropped: u64,
    down_queue_dropped: u64,
    down_duplicated: u64,
    down_reordered: u64,
    /// Direction of the current steering excursion: `Some(true)` rising,
    /// `Some(false)` falling, `None` before the first latch.
    srr_dir: Option<bool>,
    /// The running extreme the hysteresis measures excursions from.
    srr_anchor: f64,
    /// Lowest / highest steer seen before the first direction latch.
    srr_lo: f64,
    srr_hi: f64,
    srr_init: bool,
}

/// J2944 reversal gap: a direction change only counts once the steering
/// excursion from the previous extreme exceeds this (same θ as the
/// offline `rdsim-metrics` SRR).
const SRR_THETA: f64 = 0.05;

impl TimelineTaps {
    /// Advances the incremental steering-reversal detector by one raw
    /// per-tick sample, returning the number of reversals completed.
    ///
    /// This mirrors the hysteresis core of the offline J2944 SRR metric,
    /// but runs on raw samples without the 0.6 Hz Butterworth filter and
    /// extrema extraction (which need the whole signal). Counts therefore
    /// differ slightly from the offline metric — the timeline wants a
    /// cheap, causal per-window workload signal, not the paper statistic,
    /// which stays with `rdsim-metrics`.
    fn srr_step(&mut self, e: f64) -> u64 {
        if !e.is_finite() {
            return 0;
        }
        if !self.srr_init {
            self.srr_init = true;
            self.srr_anchor = e;
            self.srr_lo = e;
            self.srr_hi = e;
            return 0;
        }
        match self.srr_dir {
            None => {
                self.srr_lo = self.srr_lo.min(e);
                self.srr_hi = self.srr_hi.max(e);
                if self.srr_hi - e >= SRR_THETA {
                    self.srr_dir = Some(false);
                    self.srr_anchor = e;
                } else if e - self.srr_lo >= SRR_THETA {
                    self.srr_dir = Some(true);
                    self.srr_anchor = e;
                }
                0
            }
            Some(true) => {
                if e > self.srr_anchor {
                    self.srr_anchor = e;
                    0
                } else if self.srr_anchor - e >= SRR_THETA {
                    self.srr_dir = Some(false);
                    self.srr_anchor = e;
                    1
                } else {
                    0
                }
            }
            Some(false) => {
                if e < self.srr_anchor {
                    self.srr_anchor = e;
                    0
                } else if e - self.srr_anchor >= SRR_THETA {
                    self.srr_dir = Some(true);
                    self.srr_anchor = e;
                    1
                } else {
                    0
                }
            }
        }
    }
}

/// The [`Timeline`] fault bits implied by an active netem configuration.
fn netem_fault_bits(cfg: &NetemConfig) -> u64 {
    let mut bits = 0;
    if cfg
        .delay
        .as_ref()
        .is_some_and(|d| d.base.get() > 0.0 || d.jitter.get() > 0.0)
    {
        bits |= Timeline::FAULT_DELAY;
    }
    if cfg.loss.is_some() {
        bits |= Timeline::FAULT_LOSS;
    }
    if cfg.duplicate.is_some() {
        bits |= Timeline::FAULT_DUPLICATE;
    }
    if cfg.corrupt.is_some() {
        bits |= Timeline::FAULT_CORRUPT;
    }
    if cfg
        .reorder
        .as_ref()
        .is_some_and(|r| r.probability.get() > 0.0)
    {
        bits |= Timeline::FAULT_REORDER;
    }
    if cfg.rate.is_some() {
        bits |= Timeline::FAULT_RATE;
    }
    if cfg.effective_limit().is_some() {
        bits |= Timeline::FAULT_LIMIT;
    }
    bits
}

impl SessionCore {
    /// Current simulation time.
    pub(crate) fn time(&self) -> SimTime {
        self.server.world().time()
    }

    /// The vehicle-side link-quality estimate.
    pub(crate) fn qos_estimate(&self) -> crate::safety::QosEstimate {
        let misses = self.cmd_window.iter().filter(|&&m| m).count();
        let loss = if self.cmd_window.is_empty() {
            0.0
        } else {
            misses as f64 / self.cmd_window.len() as f64
        };
        crate::safety::QosEstimate {
            command_age: self
                .last_cmd_received_at
                .map(|t| self.time().saturating_since(t)),
            command_loss: rdsim_units::Ratio::new(loss),
            commands_received: self.obs.commands_delivered.get(),
        }
    }

    pub(crate) fn note_cmd_delivery(&mut self, seq: u64) {
        const WINDOW: usize = 100;
        if let Some(prev) = self.highest_cmd_seq {
            if seq > prev {
                for _ in 0..(seq - prev - 1).min(WINDOW as u64) {
                    self.cmd_window.push_back(true); // missed
                }
            }
        }
        self.cmd_window.push_back(false); // delivered
        while self.cmd_window.len() > WINDOW {
            self.cmd_window.pop_front();
        }
        self.highest_cmd_seq = Some(self.highest_cmd_seq.map_or(seq, |p| p.max(seq)));
    }

    pub(crate) fn mark_incident(
        &mut self,
        kind: IncidentKind,
        time: SimTime,
        stage: TraceStage,
        arg: u64,
    ) {
        let n = self.incident_seq;
        self.incident_seq += 1;
        self.tracer
            .record(TraceId::incident(n), stage, time.as_micros(), arg);
        self.incidents.push(IncidentMark { kind, time });
    }

    /// Mirrors injection-log entries not yet seen as structured recorder
    /// events (`session.fault`) and fault-edge incident marks, stamped
    /// with the transition's sim-time.
    pub(crate) fn sync_fault_events(&mut self) {
        let log = self.injector.log();
        let new: Vec<(SimTime, bool, String)> = log[self.fault_events_seen..]
            .iter()
            .map(|ev| {
                (
                    ev.time,
                    matches!(ev.action, InjectionAction::Added),
                    format!("{} {} {:?}", ev.action, ev.direction, ev.config),
                )
            })
            .collect();
        self.fault_events_seen = log.len();
        for (time, added, note) in new {
            if self.recorder.enabled() {
                self.recorder.event("session.fault", time.as_micros(), note);
            }
            // Fault-window edges are trace incidents: arg 1 = rule added
            // (window opens), 0 = rule deleted (window closes).
            self.mark_incident(
                IncidentKind::FaultEdge,
                time,
                TraceStage::FaultEdge,
                added as u64,
            );
        }
    }

    pub(crate) fn sample(&mut self, now: SimTime) {
        let world = self.server.world();
        let Some(ego_id) = world.ego_id() else { return };
        let ego = world.actor(ego_id);
        let control = ego.applied_control();
        let lead = world
            .ego_lead_gap(self.lead_log_horizon)
            .map(|(actor, gap, closing)| LeadObservation {
                actor,
                gap,
                closing_speed: closing,
            });
        let frame = world.frame_hint();
        self.log.push_ego(EgoSample {
            t: now,
            frame,
            position: ego.state().position(),
            velocity: ego.state().velocity(),
            speed: ego.state().speed,
            accel: ego.state().accel,
            throttle: control.throttle.get(),
            steer: control.steer,
            brake: control.brake.get(),
            lead,
        });
        let ego_pos = ego.state().position();
        // Pushed straight into the log — `world` (self.server) and
        // `self.log` are disjoint fields, so no intermediate collect.
        for a in world.actors() {
            if a.id() == ego_id || a.kind() != ActorKind::Vehicle || a.is_stationary_behavior() {
                continue;
            }
            self.log.push_other(OtherSample {
                actor: a.id(),
                t: now,
                frame,
                distance_from_ego: ego_pos.distance_m(a.state().position()),
                position: a.state().position(),
                speed: a.state().speed,
            });
        }
        // Copied out before the incident marker needs `&mut self` below.
        let tl_speed_mps = ego.state().speed.get();
        let tl_steer = control.steer;
        // TTC breach-entry detection, mirroring the offline TTC metric's
        // defaults (gate 100 m, min closing 1 m/s, threshold 6 s). Only the
        // entry edge marks an incident; the flag resets when TTC recovers.
        const TTC_MAX_GAP_M: f64 = 100.0;
        const TTC_MIN_CLOSING_MPS: f64 = 1.0;
        const TTC_THRESHOLD_S: f64 = 6.0;
        let ttc_s = lead.as_ref().and_then(|l| {
            let (gap, closing) = (l.gap.get(), l.closing_speed.get());
            (gap <= TTC_MAX_GAP_M && closing >= TTC_MIN_CLOSING_MPS).then(|| gap / closing)
        });
        let breached = ttc_s.is_some_and(|t| t < TTC_THRESHOLD_S);
        if breached && !self.ttc_breached {
            let ttc_us = (ttc_s.unwrap_or_default() * 1e6) as u64;
            self.mark_incident(IncidentKind::TtcBreach, now, TraceStage::Incident, ttc_us);
        }
        self.ttc_breached = breached;
        if self.timeline.is_some() {
            self.timeline_tick(now, tl_speed_mps, tl_steer, ttc_s);
        }
        let world = self.server.world_mut();
        let collisions = world.drain_collisions();
        let invasions = world.drain_lane_invasions();
        for c in &collisions {
            // Incident arg: impact severity as |relative speed| in mm/s.
            let severity = (c.relative_speed.get().abs() * 1_000.0) as u64;
            self.mark_incident(
                IncidentKind::Collision,
                c.time,
                TraceStage::Incident,
                severity,
            );
        }
        self.log.extend_collisions(collisions);
        self.log.extend_lane_invasions(invasions);
    }

    /// Folds this tick's link deltas, safety signals and fault bits into
    /// the timeline window containing `now`. Called once per step from the
    /// logging stage; a no-op unless the timeline is enabled.
    fn timeline_tick(&mut self, now: SimTime, speed_mps: f64, steer: f64, ttc_s: Option<f64>) {
        // Gather every link-side value first, then borrow the window once.
        let up_dropped = self.link.uplink.stats().dropped;
        let up_queue_dropped = self.link.uplink.queue_dropped();
        let up_duplicated = self.link.uplink.duplicated();
        let up_reordered = self.link.uplink.reordered();
        let down_dropped = self.link.downlink.stats().dropped;
        let down_queue_dropped = self.link.downlink.queue_dropped();
        let down_duplicated = self.link.downlink.duplicated();
        let down_reordered = self.link.downlink.reordered();
        let up_in_flight = self.link.uplink.in_flight() as u64;
        let down_in_flight = self.link.downlink.in_flight() as u64;
        let fault_bits = if self.injector.fault_active() {
            Timeline::FAULT_ACTIVE
                | netem_fault_bits(self.link.uplink.config())
                | netem_fault_bits(self.link.downlink.config())
        } else {
            0
        };
        let taps = &mut self.tl_taps;
        let reversals = taps.srr_step(steer);
        let d_up_dropped = up_dropped - taps.up_dropped;
        let d_up_queue_dropped = up_queue_dropped - taps.up_queue_dropped;
        let d_up_duplicated = up_duplicated - taps.up_duplicated;
        let d_up_reordered = up_reordered - taps.up_reordered;
        let d_down_dropped = down_dropped - taps.down_dropped;
        let d_down_queue_dropped = down_queue_dropped - taps.down_queue_dropped;
        let d_down_duplicated = down_duplicated - taps.down_duplicated;
        let d_down_reordered = down_reordered - taps.down_reordered;
        taps.up_dropped = up_dropped;
        taps.up_queue_dropped = up_queue_dropped;
        taps.up_duplicated = up_duplicated;
        taps.up_reordered = up_reordered;
        taps.down_dropped = down_dropped;
        taps.down_queue_dropped = down_queue_dropped;
        taps.down_duplicated = down_duplicated;
        taps.down_reordered = down_reordered;
        let Some(tl) = self.timeline.as_mut() else {
            return;
        };
        let w = tl.window_mut(now.as_micros());
        w.up_dropped += d_up_dropped;
        w.up_queue_dropped += d_up_queue_dropped;
        w.up_duplicated += d_up_duplicated;
        w.up_reordered += d_up_reordered;
        w.down_dropped += d_down_dropped;
        w.down_queue_dropped += d_down_queue_dropped;
        w.down_duplicated += d_down_duplicated;
        w.down_reordered += d_down_reordered;
        w.up_queue_max = w.up_queue_max.max(up_in_flight);
        w.down_queue_max = w.down_queue_max.max(down_in_flight);
        w.speed_sum_mmps += (speed_mps.max(0.0) * 1_000.0).round() as u64;
        w.speed_samples += 1;
        w.srr_reversals += reversals;
        w.fault_bits |= fault_bits;
        if let Some(t) = ttc_s {
            w.record_gated_ttc((t * 1e6).round() as u64);
        }
    }
}

/// A human-in-the-loop RDS test session (Fig. 3 of the paper): the
/// simulator server streams frames through the emulated network to the
/// operator; the operator's commands stream back through the same faults.
///
/// The session is a thin composition — shared state plus an ordered
/// [`Stage`] list ([`default_stages`](Self::default_stages)); one
/// [`step`](Self::step) runs the list once. The stage list can be
/// inspected and customised ([`stage_names`](Self::stage_names),
/// [`replace_stage`](Self::replace_stage),
/// [`insert_stage_after`](Self::insert_stage_after)) to slot in new
/// link, codec or operator variants without touching the core loop.
#[derive(Debug)]
pub struct RdsSession {
    pub(crate) core: SessionCore,
    pub(crate) stages: Vec<Box<dyn Stage>>,
    pub(crate) scratch: StepScratch,
}

impl RdsSession {
    /// Creates a session around a world with a spawned ego vehicle,
    /// running the default stage pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the world has no ego vehicle.
    pub fn new(world: World, config: RdsSessionConfig, seed: u64) -> Self {
        let recorder = config.recorder;
        let tracer = config.tracer;
        let mut server = SimulatorServer::new(world, config.camera, seed);
        server.set_recorder(recorder.clone());
        let mut link = DuplexLink::new(seed ^ 0x6E65_7431);
        link.attach_recorder(&recorder);
        link.attach_tracer(&tracer);
        let obs = SessionObs::new(&recorder);
        RdsSession {
            core: SessionCore {
                server,
                link,
                injector: FaultInjector::new(),
                dt: config.dt,
                lead_log_horizon: config.lead_log_horizon,
                infrastructure: config.infrastructure,
                log: RunLog::new(),
                recorder,
                tracer,
                obs,
                fault_events_seen: 0,
                frame_seq: 0,
                cmd_seq: 0,
                incidents: Vec::new(),
                incident_seq: 0,
                ttc_breached: false,
                last_displayed_frame: None,
                safety: None,
                cmd_pool: bytes::BufPool::with_slot_capacity(crate::COMMAND_PACKET_BYTES),
                last_cmd_received_at: None,
                highest_cmd_seq: None,
                cmd_window: std::collections::VecDeque::new(),
                timeline: config.timeline.then(Timeline::default),
                tl_taps: TimelineTaps::default(),
            },
            stages: Self::default_stages(),
            scratch: StepScratch::default(),
        }
    }

    /// The default stage pipeline, in execution order: fault clock,
    /// vehicle physics, sensing/capture, uplink, display, operator,
    /// downlink, actuation, safety stack, logging.
    pub fn default_stages() -> Vec<Box<dyn Stage>> {
        vec![
            Box::new(FaultWindowStage),
            Box::new(VehicleStage),
            Box::new(CaptureStage),
            Box::new(UplinkStage),
            Box::new(DisplayStage),
            Box::new(OperatorStage),
            Box::new(DownlinkStage),
            Box::new(ActuateStage),
            Box::new(SafetyStage),
            Box::new(LoggingStage),
        ]
    }

    /// The pipeline's stage names, in execution order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Whether this session can join the batched stage-major sweep:
    /// the stage list still has the canonical ten-stage shape (names in
    /// order — a replaced position is fine, it demotes per position via
    /// [`Stage::is_default_impl`]) and no live telemetry recorder is
    /// attached (the serial path emits one span sample per stage per
    /// step, which the dense sweep deliberately does not replicate).
    pub(crate) fn batched_eligible(&self) -> bool {
        !self.core.recorder.enabled()
            && self.stages.len() == crate::pipeline::CANONICAL_STAGE_NAMES.len()
            && self
                .stages
                .iter()
                .zip(crate::pipeline::CANONICAL_STAGE_NAMES)
                .all(|(stage, name)| stage.name() == name)
    }

    /// Replaces the stage called `name` with `stage`, returning `true` if
    /// a stage by that name existed.
    pub fn replace_stage(&mut self, name: &str, stage: Box<dyn Stage>) -> bool {
        match self.stages.iter().position(|s| s.name() == name) {
            Some(i) => {
                self.stages[i] = stage;
                true
            }
            None => false,
        }
    }

    /// Inserts `stage` immediately after the stage called `name`,
    /// returning `true` if a stage by that name existed.
    pub fn insert_stage_after(&mut self, name: &str, stage: Box<dyn Stage>) -> bool {
        match self.stages.iter().position(|s| s.name() == name) {
            Some(i) => {
                self.stages.insert(i + 1, stage);
                true
            }
            None => false,
        }
    }

    /// Installs a vehicle-side safety stack (the paper's test setup runs
    /// without one; this is the hook its methodology exists to evaluate).
    pub fn set_safety_stack(&mut self, stack: crate::safety::SafetyStack) {
        self.core.safety = Some(stack);
    }

    /// The installed safety stack, if any.
    pub fn safety_stack(&self) -> Option<&crate::safety::SafetyStack> {
        self.core.safety.as_ref()
    }

    /// The vehicle-side link-quality estimate.
    pub fn qos_estimate(&self) -> crate::safety::QosEstimate {
        self.core.qos_estimate()
    }

    /// The simulated world (read access).
    pub fn world(&self) -> &World {
        self.core.server.world()
    }

    /// Mutable world access for scenario setup between runs.
    pub fn world_mut(&mut self) -> &mut World {
        self.core.server.world_mut()
    }

    /// The vehicle-subsystem server.
    pub fn server(&self) -> &SimulatorServer {
        &self.core.server
    }

    /// Mutable access to the server (e.g. to enable the neutral-fallback
    /// safety hook).
    pub fn server_mut(&mut self) -> &mut SimulatorServer {
        &mut self.core.server
    }

    /// Transport statistics so far (a read-out of the live counters).
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            frames_sent: self.core.obs.frames_sent.get(),
            frames_delivered: self.core.obs.frames_delivered.get(),
            frames_corrupted: self.core.obs.frames_corrupted.get(),
            commands_sent: self.core.obs.commands_sent.get(),
            commands_delivered: self.core.obs.commands_delivered.get(),
            commands_corrupted: self.core.obs.commands_corrupted.get(),
        }
    }

    /// The session's telemetry recorder (null unless one was configured).
    pub fn recorder(&self) -> &Recorder {
        &self.core.recorder
    }

    /// The session's causal tracer (the always-on flight recorder unless
    /// a null tracer was configured).
    pub fn tracer(&self) -> &Tracer {
        &self.core.tracer
    }

    /// Safety-incident marks emitted so far.
    pub fn incidents(&self) -> &[IncidentMark] {
        &self.core.incidents
    }

    /// The time-resolved timeline recorded so far (None unless enabled
    /// via [`RdsSessionConfig::timeline`]).
    pub fn timeline(&self) -> Option<&Timeline> {
        self.core.timeline.as_ref()
    }

    /// Takes the recorded timeline out of the session (an empty default
    /// when the timeline was not enabled). Call before
    /// [`into_log`](Self::into_log).
    pub fn take_timeline(&mut self) -> Timeline {
        self.core.timeline.take().unwrap_or_default()
    }

    /// Current simulation time.
    pub fn time(&self) -> SimTime {
        self.core.time()
    }

    /// The session step.
    pub fn dt(&self) -> SimDuration {
        self.core.dt
    }

    /// Schedules a fault window.
    ///
    /// # Errors
    ///
    /// Returns the conflicting window on overlap.
    #[allow(clippy::result_large_err)] // mirrors FaultInjector::schedule
    pub fn schedule_fault(&mut self, window: InjectionWindow) -> Result<(), InjectionWindow> {
        self.core.injector.schedule(window)
    }

    /// Schedules every compiled window of a measured-network trace.
    ///
    /// # Errors
    ///
    /// Returns the first trace window that overlaps an already
    /// scheduled one; windows before it are left scheduled.
    #[allow(clippy::result_large_err)] // mirrors FaultInjector::schedule
    pub fn schedule_trace(&mut self, trace: &TraceSchedule) -> Result<(), InjectionWindow> {
        self.core.injector.schedule_trace(trace)
    }

    /// Injects a rule immediately (test-leader style ad-hoc injection).
    pub fn inject_now(&mut self, config: NetemConfig) {
        let now = self.time();
        self.core
            .injector
            .inject_now(&mut self.core.link, config, now);
        self.core.sync_fault_events();
    }

    /// Injects a rule on one direction only — the unidirectional variants
    /// of the related 4G/5G evaluation work.
    pub fn inject_now_on(&mut self, direction: rdsim_netem::Direction, config: NetemConfig) {
        let now = self.time();
        self.core
            .injector
            .inject_now_on(&mut self.core.link, direction, config, now);
        self.core.sync_fault_events();
    }

    /// Clears the active rule immediately.
    pub fn clear_fault_now(&mut self) {
        let now = self.time();
        self.core.injector.clear_now(&mut self.core.link, now);
        self.core.sync_fault_events();
    }

    /// Pre-sizes the session's buffers for a run of (at least) `duration`:
    /// run-log sample vectors from the step count and the current moving
    /// vehicles, and the trace ring from the expected frame/command event
    /// volume (clamped to its bound). Optional — purely an allocation
    /// optimisation — but after calling it a steady-state
    /// capture→…→actuate step performs zero heap allocations (see the
    /// `alloc_regression` suite).
    pub fn preallocate(&mut self, duration: SimDuration) {
        let steps = duration.div_steps(self.core.dt) as usize;
        let world = self.core.server.world();
        let movers = world
            .actors()
            .iter()
            .filter(|a| {
                Some(a.id()) != world.ego_id()
                    && a.kind() == ActorKind::Vehicle
                    && !a.is_stationary_behavior()
            })
            .count();
        self.core.log.reserve_samples(steps, steps * movers);
        let frames = (duration.as_secs_f64() * self.core.server.camera_config().max_fps.get())
            .ceil() as usize
            + 1;
        // Per frame: capture, encode, netem enqueue/deliver, decode,
        // display (+ duplicates); per step: command emit, enqueue,
        // deliver, actuate. Headroom of 2× covers duplication faults.
        self.core.tracer.preallocate(2 * (frames * 6 + steps * 4));
        // Delay-queue headroom: worst-case in-flight under the paper's
        // fault matrix is a few packets per direction; 64 makes heap
        // growth impossible at negligible cost (~4 KiB per direction).
        self.core.link.uplink.reserve(64);
        self.core.link.downlink.reserve(64);
        if let Some(tl) = self.core.timeline.as_mut() {
            tl.preallocate(duration.as_micros());
        }
    }

    /// Advances one tick by running every pipeline stage in order.
    ///
    /// With a live recorder attached, each stage's wall time is recorded
    /// into its own `session.stage.<name>_ns` histogram — one sample per
    /// stage per step.
    pub fn step(&mut self, operator: &mut dyn OperatorSubsystem) {
        self.core.obs.steps.inc();
        self.scratch.reset();
        for stage in &mut self.stages {
            let span = self.core.recorder.span(stage.span_name());
            let mut ctx = StageContext {
                core: &mut self.core,
                operator,
                scratch: &mut self.scratch,
            };
            stage.advance(&mut ctx);
            span.finish();
        }
    }

    /// Runs for a duration (rounded down to whole steps).
    pub fn run(&mut self, operator: &mut dyn OperatorSubsystem, duration: SimDuration) {
        for _ in 0..duration.div_steps(self.core.dt) {
            self.step(operator);
        }
    }

    /// Consumes the session, returning the completed run log.
    pub fn into_log(mut self) -> RunLog {
        self.core.sync_fault_events();
        self.core.log.set_faults(self.core.injector.log().to_vec());
        self.core
            .log
            .set_duration(self.time().saturating_since(SimTime::ZERO));
        // Surface flight-recorder accounting in the run's telemetry so
        // campaign reports can aggregate it next to `events_dropped`.
        if self.core.recorder.enabled() && self.core.tracer.enabled() {
            let overwritten = self.core.tracer.overwritten();
            self.core
                .recorder
                .counter("session.trace.recorded")
                .add(self.core.tracer.len() as u64 + overwritten);
            self.core
                .recorder
                .counter("session.trace.overwritten")
                .add(overwritten);
        }
        let incidents = std::mem::take(&mut self.core.incidents);
        self.core.log.set_incidents(incidents);
        self.core.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PaperFault, ScriptedOperator};
    use rdsim_netem::InjectionWindow;
    use rdsim_roadnet::town05;
    use rdsim_simulator::Behavior;
    use rdsim_simulator::LaneFollowConfig;
    use rdsim_units::{Hertz, MetersPerSecond};
    use rdsim_vehicle::{ControlInput, VehicleSpec};

    fn session_with_lead(seed: u64) -> RdsSession {
        let mut world = World::new(town05(), seed);
        world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
        world.spawn_npc_at(
            "lead-start",
            ActorKind::Vehicle,
            VehicleSpec::passenger_car(),
            Behavior::LaneFollow(LaneFollowConfig::urban(MetersPerSecond::new(8.0))),
            MetersPerSecond::new(8.0),
        );
        let config = RdsSessionConfig {
            camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
            ..RdsSessionConfig::default()
        };
        RdsSession::new(world, config, seed)
    }

    #[test]
    fn default_pipeline_has_the_documented_order() {
        let s = session_with_lead(1);
        assert_eq!(
            s.stage_names(),
            vec![
                "fault_window",
                "vehicle",
                "capture",
                "uplink",
                "display",
                "operator",
                "downlink",
                "actuate",
                "safety",
                "logging",
            ]
        );
    }

    #[test]
    fn replace_and_insert_address_stages_by_name() {
        /// A stage that counts its invocations (used to prove insertion).
        #[derive(Debug, Default)]
        struct ProbeStage {
            ticks: std::sync::Arc<std::sync::atomic::AtomicU64>,
        }
        impl Stage for ProbeStage {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn span_name(&self) -> &'static str {
                "session.stage.probe_ns"
            }
            fn advance(&mut self, ctx: &mut StageContext<'_>) {
                // Exercise the public accessors available to external stages.
                assert!(ctx.time() >= SimTime::ZERO);
                assert!(ctx.dt() > SimDuration::ZERO);
                let _ = ctx.world().time();
                self.ticks
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }

        let mut s = session_with_lead(2);
        let ticks = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        assert!(!s.insert_stage_after("nope", Box::new(ProbeStage::default())));
        assert!(s.insert_stage_after(
            "display",
            Box::new(ProbeStage {
                ticks: ticks.clone()
            })
        ));
        assert_eq!(s.stage_names()[5], "probe");
        let mut op = ScriptedOperator::constant(ControlInput::COAST);
        s.run(&mut op, SimDuration::from_secs(1));
        assert_eq!(ticks.load(std::sync::atomic::Ordering::Relaxed), 50);
        // Replacing swaps in place without changing the pipeline length.
        let len = s.stage_names().len();
        assert!(s.replace_stage("probe", Box::new(ProbeStage::default())));
        assert_eq!(s.stage_names().len(), len);
        assert!(!s.replace_stage("gone", Box::new(ProbeStage::default())));
    }

    #[test]
    fn fault_free_session_runs_and_logs() {
        let mut s = session_with_lead(1);
        let mut op = ScriptedOperator::constant(ControlInput::new(0.5, 0.0, 0.0));
        s.run(&mut op, SimDuration::from_secs(10));
        let stats = s.stats();
        assert_eq!(stats.commands_sent, 500);
        assert_eq!(stats.commands_delivered, 500);
        assert_eq!(stats.frames_corrupted, 0);
        assert!(
            stats.frames_delivered >= 245,
            "≈250 frames in 10 s at 25 fps"
        );
        assert_eq!(stats.frames_delivered, stats.frames_sent);
        assert!(op.frames_seen() >= 245);

        let log = s.into_log();
        assert_eq!(log.ego_samples().len(), 500);
        assert!(!log.other_samples().is_empty(), "lead vehicle is logged");
        assert!(log.has_lead_data());
        assert_eq!(log.duration(), SimDuration::from_secs(10));
        // The ego actually moved under the operator's throttle.
        let last = log.ego_samples().last().unwrap();
        assert!(last.speed.get() > 5.0);
    }

    #[test]
    fn delay_fault_postpones_frames_and_commands() {
        let mut s = session_with_lead(2);
        s.schedule_fault(InjectionWindow::new(
            SimTime::ZERO,
            SimDuration::from_secs(3600),
            PaperFault::Delay50ms.config(),
        ))
        .unwrap();
        let mut op = ScriptedOperator::constant(ControlInput::new(0.5, 0.0, 0.0));
        // Step a few times: commands take 50 ms to arrive, so the first
        // few steps leave the plant coasting.
        for _ in 0..2 {
            s.step(&mut op);
        }
        assert_eq!(s.stats().commands_sent, 2);
        assert_eq!(s.stats().commands_delivered, 0, "50 ms not yet elapsed");
        for _ in 0..3 {
            s.step(&mut op);
        }
        assert!(s.stats().commands_delivered > 0, "after 100 ms they land");
        // Frame latency visible end to end.
        let log = s.into_log();
        assert_eq!(log.fault_events().len(), 1);
    }

    #[test]
    fn loss_fault_drops_traffic() {
        let mut s = session_with_lead(3);
        s.inject_now(NetemConfig::default().with_loss(rdsim_units::Ratio::from_percent(50.0)));
        let mut op = ScriptedOperator::constant(ControlInput::new(0.4, 0.0, 0.0));
        s.run(&mut op, SimDuration::from_secs(20));
        let stats = s.stats();
        assert!(stats.commands_delivered < stats.commands_sent * 7 / 10);
        assert!(stats.frames_delivered < stats.frames_sent * 7 / 10);
        assert!(stats.commands_delivered > stats.commands_sent * 3 / 10);
    }

    #[test]
    fn corruption_rejected_by_checksums() {
        let mut s = session_with_lead(4);
        s.inject_now(NetemConfig::default().with_corrupt(rdsim_units::Ratio::from_percent(50.0)));
        let mut op = ScriptedOperator::constant(ControlInput::new(0.4, 0.0, 0.0));
        s.run(&mut op, SimDuration::from_secs(10));
        let stats = s.stats();
        assert!(stats.frames_corrupted > 0 || stats.commands_corrupted > 0);
        // Commands were either applied intact or rejected — never mangled:
        // the throttle the plant saw is exactly the scripted 0.4.
        assert!((s.server().active_command().throttle.get() - 0.4).abs() < 1e-12);
        // Corrupted frames surfaced as bad-frame notifications.
        assert_eq!(stats.frames_corrupted, op.bad_frames());
    }

    #[test]
    fn adhoc_injection_logs_events() {
        let mut s = session_with_lead(5);
        let mut op = ScriptedOperator::constant(ControlInput::COAST);
        s.run(&mut op, SimDuration::from_secs(1));
        s.inject_now(PaperFault::Loss5Pct.config());
        s.run(&mut op, SimDuration::from_secs(1));
        s.clear_fault_now();
        s.run(&mut op, SimDuration::from_secs(1));
        let log = s.into_log();
        assert_eq!(log.fault_events().len(), 2);
        assert_eq!(
            PaperFault::from_config(&log.fault_events()[0].config),
            Some(PaperFault::Loss5Pct)
        );
    }

    #[test]
    fn scheduled_window_attributed_in_log() {
        let mut s = session_with_lead(6);
        s.schedule_fault(InjectionWindow::new(
            SimTime::from_secs(2),
            SimDuration::from_secs(3),
            PaperFault::Delay25ms.config(),
        ))
        .unwrap();
        let mut op = ScriptedOperator::constant(ControlInput::new(0.3, 0.0, 0.0));
        s.run(&mut op, SimDuration::from_secs(8));
        let log = s.into_log();
        assert_eq!(log.fault_events().len(), 2, "added + deleted");
        assert_eq!(log.fault_events()[0].time, SimTime::from_secs(2));
        assert_eq!(log.fault_events()[1].time, SimTime::from_secs(5));
    }

    #[test]
    fn infrastructure_augments_operator_view() {
        use crate::{InfrastructureSubsystem, ReceivedFrame, RoadsideUnit};
        use rdsim_math::Vec2;

        // Vehicle camera limited to 50 m; the parked van 230 m ahead is
        // only visible through the roadside unit.
        let build = |with_unit: bool| {
            let mut world = World::new(town05(), 7);
            world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
            world.spawn_npc_at(
                "slalom-1",
                ActorKind::Vehicle,
                VehicleSpec::van(),
                Behavior::Stationary,
                MetersPerSecond::ZERO,
            );
            let mut infra = InfrastructureSubsystem::new();
            infra.set_vehicle_visibility(Some(Meters::new(50.0)));
            if with_unit {
                infra.add_unit(RoadsideUnit::new(Vec2::new(250.0, 0.0), Meters::new(60.0)));
            }
            let config = RdsSessionConfig {
                camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
                infrastructure: Some(infra),
                ..RdsSessionConfig::default()
            };
            RdsSession::new(world, config, 7)
        };

        struct CountingOp {
            saw_van: bool,
        }
        impl OperatorSubsystem for CountingOp {
            fn on_frame(&mut self, frame: ReceivedFrame) {
                if !frame.snapshot.others.is_empty() {
                    self.saw_van = true;
                }
            }
            fn command(&mut self, _now: SimTime) -> ControlInput {
                ControlInput::COAST
            }
        }

        let mut without = build(false);
        let mut op1 = CountingOp { saw_van: false };
        without.run(&mut op1, SimDuration::from_secs(2));
        assert!(!op1.saw_van, "van hidden beyond vehicle visibility");

        let mut with = build(true);
        let mut op2 = CountingOp { saw_van: false };
        with.run(&mut op2, SimDuration::from_secs(2));
        assert!(op2.saw_van, "roadside unit reveals the van");
    }

    fn recorded_session_with_lead(seed: u64, recorder: Recorder) -> RdsSession {
        let mut world = World::new(town05(), seed);
        world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
        world.spawn_npc_at(
            "lead-start",
            ActorKind::Vehicle,
            VehicleSpec::passenger_car(),
            Behavior::LaneFollow(LaneFollowConfig::urban(MetersPerSecond::new(8.0))),
            MetersPerSecond::new(8.0),
        );
        let config = RdsSessionConfig {
            camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
            recorder,
            ..RdsSessionConfig::default()
        };
        RdsSession::new(world, config, seed)
    }

    #[test]
    fn telemetry_mirrors_stats_and_measures_ages() {
        let registry = rdsim_obs::Registry::new();
        let mut s = recorded_session_with_lead(8, registry.recorder());
        s.inject_now(PaperFault::Delay50ms.config());
        let mut op = ScriptedOperator::constant(ControlInput::new(0.4, 0.0, 0.0));
        s.run(&mut op, SimDuration::from_secs(4));
        let stats = s.stats();
        let stage_spans: Vec<&'static str> = RdsSession::default_stages()
            .iter()
            .map(|stage| stage.span_name())
            .collect();
        let t = registry.snapshot();

        // SessionStats is a read-out of the same counters the registry sees.
        assert_eq!(t.counter("session.frames_sent"), stats.frames_sent);
        assert_eq!(
            t.counter("session.frames_delivered"),
            stats.frames_delivered
        );
        assert_eq!(t.counter("session.commands_sent"), stats.commands_sent);
        assert_eq!(
            t.counter("session.commands_delivered"),
            stats.commands_delivered
        );
        assert_eq!(t.counter("session.steps"), 200, "4 s at 50 Hz");

        // Glass-to-glass ages reflect the 50 ms rule (plus capture→send
        // queueing for frames, which only raises the age).
        let fa = t.histogram("session.frame_age_us").expect("frame ages");
        assert_eq!(fa.count, stats.frames_delivered);
        assert!(fa.min >= 50_000, "frame age floor is the link delay");
        let ca = t.histogram("session.command_age_us").expect("command ages");
        assert_eq!(ca.count, stats.commands_delivered);
        assert!(ca.min >= 50_000 && ca.p50() >= 50_000);

        // The rule was active the whole run, so every packet is inside.
        assert_eq!(
            t.counter("session.fault_window.inside.sent"),
            stats.frames_sent + stats.commands_sent
        );
        assert_eq!(t.counter("session.fault_window.outside.sent"), 0);

        // The injection shows up as a structured event at sim-time zero.
        let faults: Vec<_> = t
            .events
            .iter()
            .filter(|e| e.name == "session.fault")
            .collect();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].sim_us, 0);
        assert!(faults[0].note.starts_with("added both"));

        // Stage timings: every pipeline stage records exactly one sample
        // per step under its own histogram.
        let steps = t.counter("session.steps");
        assert_eq!(stage_spans.len(), 10);
        for name in stage_spans {
            let h = t.histogram(name).expect(name);
            assert_eq!(h.count, steps, "{name}");
        }

        // The codec hooks fired for every encode/decode.
        assert_eq!(
            t.histogram("codec.encode_ns").expect("encode").count,
            stats.frames_sent
        );
        assert_eq!(
            t.histogram("codec.decode_ns").expect("decode").count,
            stats.frames_delivered + stats.frames_corrupted
        );
    }

    #[test]
    fn recorder_event_stream_is_deterministic() {
        let run = |seed| {
            let registry = rdsim_obs::Registry::new();
            let mut s = recorded_session_with_lead(seed, registry.recorder());
            s.schedule_fault(InjectionWindow::new(
                SimTime::from_secs(1),
                SimDuration::from_secs(2),
                PaperFault::Loss5Pct.config(),
            ))
            .unwrap();
            let mut op = ScriptedOperator::constant(ControlInput::new(0.5, 0.0, 0.01));
            s.run(&mut op, SimDuration::from_secs(5));
            drop(s);
            let t = registry.snapshot();
            let keys: Vec<_> = t.events.iter().map(|e| e.deterministic_key()).collect();
            (keys, t.counters.clone())
        };
        let (events_a, counters_a) = run(11);
        let (events_b, counters_b) = run(11);
        assert_eq!(events_a, events_b, "sim-time-stamped event streams");
        assert_eq!(counters_a, counters_b, "all counters, incl. fault-window");
        assert!(!events_a.is_empty(), "window open + close were mirrored");
    }

    #[test]
    fn tracer_records_complete_lineages() {
        use rdsim_obs::{ArtifactKind, TraceStage};
        let mut s = session_with_lead(13);
        assert!(s.tracer().enabled(), "flight recorder is on by default");
        let mut op = ScriptedOperator::constant(ControlInput::new(0.5, 0.0, 0.0));
        s.run(&mut op, SimDuration::from_secs(5));
        let stats = s.stats();
        let log = s.tracer().log();

        // Every delivered frame has a full capture → display lineage and
        // every applied command a full emit → actuate lineage.
        assert_eq!(
            log.complete_lineages(
                ArtifactKind::Frame,
                TraceStage::Capture,
                TraceStage::Display
            ),
            stats.frames_delivered
        );
        assert_eq!(
            log.complete_lineages(
                ArtifactKind::Command,
                TraceStage::CommandEmit,
                TraceStage::Actuate
            ),
            stats.commands_delivered
        );
        // A frame's lineage passes through the qdisc in causal order.
        let lineage = log.lineage(rdsim_obs::TraceId::frame(10));
        let stages: Vec<TraceStage> = lineage.iter().map(|e| e.stage).collect();
        assert_eq!(
            stages,
            vec![
                TraceStage::Capture,
                TraceStage::Encode,
                TraceStage::NetemEnqueue,
                TraceStage::NetemDeliver,
                TraceStage::Decode,
                TraceStage::Display,
            ]
        );
        // Commands reference the frame the operator last saw.
        let emit = log
            .events
            .iter()
            .rfind(|e| e.stage == TraceStage::CommandEmit)
            .expect("commands were emitted");
        assert!(emit.arg < stats.frames_delivered, "a real frame seq");
    }

    #[test]
    fn fault_edges_become_incident_marks() {
        let mut s = session_with_lead(14);
        let mut op = ScriptedOperator::constant(ControlInput::COAST);
        s.run(&mut op, SimDuration::from_secs(1));
        s.inject_now(PaperFault::Loss5Pct.config());
        s.run(&mut op, SimDuration::from_secs(1));
        s.clear_fault_now();
        assert_eq!(s.incidents().len(), 2, "added + deleted edges");
        assert!(s
            .incidents()
            .iter()
            .all(|i| i.kind == crate::IncidentKind::FaultEdge));
        let edge_time = s.incidents()[0].time;
        let trace = s.tracer().log();
        let edges: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.stage == TraceStage::FaultEdge)
            .collect();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].arg, 1, "rule added");
        assert_eq!(edges[1].arg, 0, "rule deleted");
        let log = s.into_log();
        assert_eq!(log.incidents().len(), 2, "marks move into the run log");
        assert_eq!(log.incidents()[0].time, edge_time);
    }

    #[test]
    fn trace_stream_is_deterministic() {
        let run = |seed| {
            let mut s = session_with_lead(seed);
            s.schedule_fault(InjectionWindow::new(
                SimTime::from_secs(1),
                SimDuration::from_secs(2),
                PaperFault::Loss5Pct.config(),
            ))
            .unwrap();
            let mut op = ScriptedOperator::constant(ControlInput::new(0.5, 0.0, 0.01));
            s.run(&mut op, SimDuration::from_secs(5));
            s.tracer().log()
        };
        let a = run(11);
        assert_eq!(a, run(11), "sim-time-only stamps replay identically");
        assert!(!a.events.is_empty());
        assert_ne!(a, run(12));
    }

    #[test]
    fn null_tracer_disables_tracing() {
        let mut world = World::new(town05(), 15);
        world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
        let config = RdsSessionConfig {
            camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
            tracer: Tracer::null(),
            ..RdsSessionConfig::default()
        };
        let mut s = RdsSession::new(world, config, 15);
        let mut op = ScriptedOperator::constant(ControlInput::COAST);
        s.run(&mut op, SimDuration::from_secs(1));
        assert!(!s.tracer().enabled());
        assert!(s.tracer().log().is_empty());
    }

    #[test]
    fn null_recorder_session_still_counts() {
        let mut s = session_with_lead(12);
        assert!(!s.recorder().enabled());
        let mut op = ScriptedOperator::constant(ControlInput::new(0.3, 0.0, 0.0));
        s.run(&mut op, SimDuration::from_secs(1));
        // Stats flow through detached counters without a registry.
        assert_eq!(s.stats().commands_sent, 50);
        assert!(s.stats().frames_delivered > 0);
    }

    #[test]
    fn determinism_end_to_end() {
        let run = |seed| {
            let mut s = session_with_lead(seed);
            s.schedule_fault(InjectionWindow::new(
                SimTime::from_secs(1),
                SimDuration::from_secs(2),
                PaperFault::Loss5Pct.config(),
            ))
            .unwrap();
            let mut op = ScriptedOperator::constant(ControlInput::new(0.5, 0.0, 0.01));
            s.run(&mut op, SimDuration::from_secs(6));
            let log = s.into_log();
            let last = log.ego_samples().last().copied().unwrap();
            (last.position.x, last.position.y, log.ego_samples().len())
        };
        assert_eq!(run(11), run(11));
    }
}
