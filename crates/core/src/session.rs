//! The HIL session: vehicle ↔ network ↔ operator in simulated time.

use crate::{
    decode_command, encode_command, EgoSample, InfrastructureSubsystem, LeadObservation,
    OperatorSubsystem, OtherSample, ReceivedFrame, RunLog,
};
use rdsim_netem::{
    DuplexLink, FaultInjector, InjectionWindow, NetemConfig, Packet, PacketKind,
};
use rdsim_simulator::{decode_frame, ActorKind, CameraConfig, SimulatorServer, World};
use rdsim_units::{Meters, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Session configuration.
#[derive(Debug, Clone)]
pub struct RdsSessionConfig {
    /// Fixed simulation step (also the command rate: one command per step).
    pub dt: SimDuration,
    /// Camera configuration for the vehicle's video feed.
    pub camera: CameraConfig,
    /// Horizon for logging lead-vehicle observations.
    pub lead_log_horizon: Meters,
    /// Optional infrastructure subsystem augmenting the operator's view.
    pub infrastructure: Option<InfrastructureSubsystem>,
}

impl Default for RdsSessionConfig {
    /// 50 Hz stepping/commands, the paper's 25–30 fps camera, 150 m lead
    /// logging horizon (metrics gate at 100 m downstream).
    fn default() -> Self {
        RdsSessionConfig {
            dt: SimDuration::from_millis(20),
            camera: CameraConfig::default(),
            lead_log_horizon: Meters::new(150.0),
            infrastructure: None,
        }
    }
}

/// Transport-level counters for a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SessionStats {
    /// Video frames sent by the vehicle subsystem.
    pub frames_sent: u64,
    /// Frames decoded and shown at the station.
    pub frames_delivered: u64,
    /// Frames that arrived but failed their checksum.
    pub frames_corrupted: u64,
    /// Commands sent by the station.
    pub commands_sent: u64,
    /// Commands applied by the vehicle.
    pub commands_delivered: u64,
    /// Commands that arrived corrupted and were rejected.
    pub commands_corrupted: u64,
}

/// A human-in-the-loop RDS test session (Fig. 3 of the paper): the
/// simulator server streams frames through the emulated network to the
/// operator; the operator's commands stream back through the same faults.
#[derive(Debug)]
pub struct RdsSession {
    server: SimulatorServer,
    link: DuplexLink,
    injector: FaultInjector,
    dt: SimDuration,
    lead_log_horizon: Meters,
    infrastructure: Option<InfrastructureSubsystem>,
    log: RunLog,
    stats: SessionStats,
    frame_seq: u64,
    cmd_seq: u64,
    safety: Option<crate::safety::SafetyStack>,
    last_cmd_received_at: Option<SimTime>,
    highest_cmd_seq: Option<u64>,
    /// Sliding delivery/miss window for the vehicle-side loss estimate.
    cmd_window: std::collections::VecDeque<bool>,
}

impl RdsSession {
    /// Creates a session around a world with a spawned ego vehicle.
    ///
    /// # Panics
    ///
    /// Panics if the world has no ego vehicle.
    pub fn new(world: World, config: RdsSessionConfig, seed: u64) -> Self {
        RdsSession {
            server: SimulatorServer::new(world, config.camera, seed),
            link: DuplexLink::new(seed ^ 0x6E65_7431),
            injector: FaultInjector::new(),
            dt: config.dt,
            lead_log_horizon: config.lead_log_horizon,
            infrastructure: config.infrastructure,
            log: RunLog::new(),
            stats: SessionStats::default(),
            frame_seq: 0,
            cmd_seq: 0,
            safety: None,
            last_cmd_received_at: None,
            highest_cmd_seq: None,
            cmd_window: std::collections::VecDeque::new(),
        }
    }

    /// Installs a vehicle-side safety stack (the paper's test setup runs
    /// without one; this is the hook its methodology exists to evaluate).
    pub fn set_safety_stack(&mut self, stack: crate::safety::SafetyStack) {
        self.safety = Some(stack);
    }

    /// The installed safety stack, if any.
    pub fn safety_stack(&self) -> Option<&crate::safety::SafetyStack> {
        self.safety.as_ref()
    }

    /// The vehicle-side link-quality estimate.
    pub fn qos_estimate(&self) -> crate::safety::QosEstimate {
        let misses = self.cmd_window.iter().filter(|&&m| m).count();
        let loss = if self.cmd_window.is_empty() {
            0.0
        } else {
            misses as f64 / self.cmd_window.len() as f64
        };
        crate::safety::QosEstimate {
            command_age: self
                .last_cmd_received_at
                .map(|t| self.time().saturating_since(t)),
            command_loss: rdsim_units::Ratio::new(loss),
            commands_received: self.stats.commands_delivered,
        }
    }

    fn note_cmd_delivery(&mut self, seq: u64) {
        const WINDOW: usize = 100;
        if let Some(prev) = self.highest_cmd_seq {
            if seq > prev {
                for _ in 0..(seq - prev - 1).min(WINDOW as u64) {
                    self.cmd_window.push_back(true); // missed
                }
            }
        }
        self.cmd_window.push_back(false); // delivered
        while self.cmd_window.len() > WINDOW {
            self.cmd_window.pop_front();
        }
        self.highest_cmd_seq = Some(self.highest_cmd_seq.map_or(seq, |p| p.max(seq)));
    }

    /// The simulated world (read access).
    pub fn world(&self) -> &World {
        self.server.world()
    }

    /// Mutable world access for scenario setup between runs.
    pub fn world_mut(&mut self) -> &mut World {
        self.server.world_mut()
    }

    /// The vehicle-subsystem server.
    pub fn server(&self) -> &SimulatorServer {
        &self.server
    }

    /// Mutable access to the server (e.g. to enable the neutral-fallback
    /// safety hook).
    pub fn server_mut(&mut self) -> &mut SimulatorServer {
        &mut self.server
    }

    /// Transport statistics so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Current simulation time.
    pub fn time(&self) -> SimTime {
        self.server.world().time()
    }

    /// The session step.
    pub fn dt(&self) -> SimDuration {
        self.dt
    }

    /// Schedules a fault window.
    ///
    /// # Errors
    ///
    /// Returns the conflicting window on overlap.
    pub fn schedule_fault(&mut self, window: InjectionWindow) -> Result<(), InjectionWindow> {
        self.injector.schedule(window)
    }

    /// Injects a rule immediately (test-leader style ad-hoc injection).
    pub fn inject_now(&mut self, config: NetemConfig) {
        let now = self.time();
        self.injector.inject_now(&mut self.link, config, now);
    }

    /// Injects a rule on one direction only — the unidirectional variants
    /// of the related 4G/5G evaluation work.
    pub fn inject_now_on(&mut self, direction: rdsim_netem::Direction, config: NetemConfig) {
        let now = self.time();
        self.injector
            .inject_now_on(&mut self.link, direction, config, now);
    }

    /// Clears the active rule immediately.
    pub fn clear_fault_now(&mut self) {
        let now = self.time();
        self.injector.clear_now(&mut self.link, now);
    }

    /// Advances one step: faults, plant, uplink, operator, downlink, log.
    pub fn step(&mut self, operator: &mut dyn OperatorSubsystem) {
        // 1. Fault windows open/close on the pre-step clock.
        let t_pre = self.time();
        self.injector.advance(&mut self.link, t_pre);

        // 2. Plant advances and may capture frames.
        let frames = self.server.tick(self.dt);
        let now = self.time();

        // 3. Frames enter the uplink (vehicle → operator).
        for frame in frames {
            self.stats.frames_sent += 1;
            let seq = self.frame_seq;
            self.frame_seq += 1;
            self.link
                .uplink
                .send(Packet::new(seq, PacketKind::Video, frame.payload), now);
        }

        // 4. Delivered frames reach the station display.
        for pkt in self.link.uplink.receive(now) {
            match decode_frame(&pkt.payload) {
                Ok(snapshot) => {
                    self.stats.frames_delivered += 1;
                    let snapshot = match &self.infrastructure {
                        Some(infra) => infra.augment(&snapshot),
                        None => snapshot,
                    };
                    let captured_at = snapshot.time;
                    operator.on_frame(ReceivedFrame {
                        snapshot,
                        captured_at,
                        received_at: now,
                    });
                }
                Err(_) => {
                    self.stats.frames_corrupted += 1;
                    operator.on_bad_frame(now);
                }
            }
        }

        // 5. The station samples the operator and sends a command.
        let control = operator.command(now);
        let seq = self.cmd_seq;
        self.cmd_seq += 1;
        self.stats.commands_sent += 1;
        self.link.downlink.send(
            Packet::new(seq, PacketKind::Command, encode_command(seq, &control)),
            now,
        );

        // 6. Delivered commands are applied by the vehicle subsystem.
        for pkt in self.link.downlink.receive(now) {
            match decode_command(&pkt.payload) {
                Ok((cmd_seq, ctrl)) => {
                    self.stats.commands_delivered += 1;
                    self.note_cmd_delivery(cmd_seq);
                    self.last_cmd_received_at = Some(now);
                    self.server.apply_command(ctrl);
                }
                Err(_) => {
                    self.stats.commands_corrupted += 1;
                }
            }
        }

        // 6b. The safety stack may override the active command based on
        // the vehicle-side QoS estimate — every step, not only when a
        // command arrives (watchdogs act precisely when nothing arrives).
        if self.safety.is_some() {
            let qos = self.qos_estimate();
            let speed = {
                let world = self.server.world();
                world
                    .ego_id()
                    .map(|id| world.actor(id).state().speed)
                    .unwrap_or_default()
            };
            let active = self.server.active_command();
            let stack = self.safety.as_mut().expect("checked");
            let effective = stack.apply(now, &qos, active, speed);
            if effective != active {
                self.server.apply_command(effective);
            }
        }

        // 7. Log one sample.
        self.sample(now);
    }

    /// Runs for a duration (rounded down to whole steps).
    pub fn run(&mut self, operator: &mut dyn OperatorSubsystem, duration: SimDuration) {
        for _ in 0..duration.div_steps(self.dt) {
            self.step(operator);
        }
    }

    /// Consumes the session, returning the completed run log.
    pub fn into_log(mut self) -> RunLog {
        self.log.set_faults(self.injector.log().to_vec());
        self.log.set_duration(self.time().saturating_since(SimTime::ZERO));
        self.log
    }

    fn sample(&mut self, now: SimTime) {
        let world = self.server.world();
        let Some(ego_id) = world.ego_id() else { return };
        let ego = world.actor(ego_id);
        let control = ego.applied_control();
        let lead = world
            .ego_lead_gap(self.lead_log_horizon)
            .map(|(actor, gap, closing)| LeadObservation {
                actor,
                gap,
                closing_speed: closing,
            });
        let frame = world.snapshot().frame_id;
        self.log.push_ego(EgoSample {
            t: now,
            frame,
            position: ego.state().position(),
            velocity: ego.state().velocity(),
            speed: ego.state().speed,
            accel: ego.state().accel,
            throttle: control.throttle.get(),
            steer: control.steer,
            brake: control.brake.get(),
            lead,
        });
        let ego_pos = ego.state().position();
        let others: Vec<OtherSample> = world
            .actors()
            .iter()
            .filter(|a| {
                a.id() != ego_id
                    && a.kind() == ActorKind::Vehicle
                    && !a.is_stationary_behavior()
            })
            .map(|a| OtherSample {
                actor: a.id(),
                t: now,
                frame,
                distance_from_ego: ego_pos.distance_m(a.state().position()),
                position: a.state().position(),
                speed: a.state().speed,
            })
            .collect();
        for o in others {
            self.log.push_other(o);
        }
        let world = self.server.world_mut();
        let collisions = world.drain_collisions();
        let invasions = world.drain_lane_invasions();
        self.log.extend_collisions(collisions);
        self.log.extend_lane_invasions(invasions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PaperFault, ScriptedOperator};
    use rdsim_netem::InjectionWindow;
    use rdsim_roadnet::town05;
    use rdsim_simulator::Behavior;
    use rdsim_simulator::LaneFollowConfig;
    use rdsim_units::{Hertz, MetersPerSecond};
    use rdsim_vehicle::{ControlInput, VehicleSpec};

    fn session_with_lead(seed: u64) -> RdsSession {
        let mut world = World::new(town05(), seed);
        world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
        world.spawn_npc_at(
            "lead-start",
            ActorKind::Vehicle,
            VehicleSpec::passenger_car(),
            Behavior::LaneFollow(LaneFollowConfig::urban(MetersPerSecond::new(8.0))),
            MetersPerSecond::new(8.0),
        );
        let config = RdsSessionConfig {
            camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
            ..RdsSessionConfig::default()
        };
        RdsSession::new(world, config, seed)
    }

    #[test]
    fn fault_free_session_runs_and_logs() {
        let mut s = session_with_lead(1);
        let mut op = ScriptedOperator::constant(ControlInput::new(0.5, 0.0, 0.0));
        s.run(&mut op, SimDuration::from_secs(10));
        let stats = s.stats();
        assert_eq!(stats.commands_sent, 500);
        assert_eq!(stats.commands_delivered, 500);
        assert_eq!(stats.frames_corrupted, 0);
        assert!(stats.frames_delivered >= 245, "≈250 frames in 10 s at 25 fps");
        assert_eq!(stats.frames_delivered, stats.frames_sent);
        assert!(op.frames_seen() >= 245);

        let log = s.into_log();
        assert_eq!(log.ego_samples().len(), 500);
        assert!(!log.other_samples().is_empty(), "lead vehicle is logged");
        assert!(log.has_lead_data());
        assert_eq!(log.duration(), SimDuration::from_secs(10));
        // The ego actually moved under the operator's throttle.
        let last = log.ego_samples().last().unwrap();
        assert!(last.speed.get() > 5.0);
    }

    #[test]
    fn delay_fault_postpones_frames_and_commands() {
        let mut s = session_with_lead(2);
        s.schedule_fault(InjectionWindow::new(
            SimTime::ZERO,
            SimDuration::from_secs(3600),
            PaperFault::Delay50ms.config(),
        ))
        .unwrap();
        let mut op = ScriptedOperator::constant(ControlInput::new(0.5, 0.0, 0.0));
        // Step a few times: commands take 50 ms to arrive, so the first
        // few steps leave the plant coasting.
        for _ in 0..2 {
            s.step(&mut op);
        }
        assert_eq!(s.stats().commands_sent, 2);
        assert_eq!(s.stats().commands_delivered, 0, "50 ms not yet elapsed");
        for _ in 0..3 {
            s.step(&mut op);
        }
        assert!(s.stats().commands_delivered > 0, "after 100 ms they land");
        // Frame latency visible end to end.
        let log = s.into_log();
        assert_eq!(log.fault_events().len(), 1);
    }

    #[test]
    fn loss_fault_drops_traffic() {
        let mut s = session_with_lead(3);
        s.inject_now(NetemConfig::default().with_loss(rdsim_units::Ratio::from_percent(50.0)));
        let mut op = ScriptedOperator::constant(ControlInput::new(0.4, 0.0, 0.0));
        s.run(&mut op, SimDuration::from_secs(20));
        let stats = s.stats();
        assert!(stats.commands_delivered < stats.commands_sent * 7 / 10);
        assert!(stats.frames_delivered < stats.frames_sent * 7 / 10);
        assert!(stats.commands_delivered > stats.commands_sent * 3 / 10);
    }

    #[test]
    fn corruption_rejected_by_checksums() {
        let mut s = session_with_lead(4);
        s.inject_now(NetemConfig::default().with_corrupt(rdsim_units::Ratio::from_percent(50.0)));
        let mut op = ScriptedOperator::constant(ControlInput::new(0.4, 0.0, 0.0));
        s.run(&mut op, SimDuration::from_secs(10));
        let stats = s.stats();
        assert!(stats.frames_corrupted > 0 || stats.commands_corrupted > 0);
        // Commands were either applied intact or rejected — never mangled:
        // the throttle the plant saw is exactly the scripted 0.4.
        assert!((s.server().active_command().throttle.get() - 0.4).abs() < 1e-12);
        // Corrupted frames surfaced as bad-frame notifications.
        assert_eq!(stats.frames_corrupted, op.bad_frames());
    }

    #[test]
    fn adhoc_injection_logs_events() {
        let mut s = session_with_lead(5);
        let mut op = ScriptedOperator::constant(ControlInput::COAST);
        s.run(&mut op, SimDuration::from_secs(1));
        s.inject_now(PaperFault::Loss5Pct.config());
        s.run(&mut op, SimDuration::from_secs(1));
        s.clear_fault_now();
        s.run(&mut op, SimDuration::from_secs(1));
        let log = s.into_log();
        assert_eq!(log.fault_events().len(), 2);
        assert_eq!(
            PaperFault::from_config(&log.fault_events()[0].config),
            Some(PaperFault::Loss5Pct)
        );
    }

    #[test]
    fn scheduled_window_attributed_in_log() {
        let mut s = session_with_lead(6);
        s.schedule_fault(InjectionWindow::new(
            SimTime::from_secs(2),
            SimDuration::from_secs(3),
            PaperFault::Delay25ms.config(),
        ))
        .unwrap();
        let mut op = ScriptedOperator::constant(ControlInput::new(0.3, 0.0, 0.0));
        s.run(&mut op, SimDuration::from_secs(8));
        let log = s.into_log();
        assert_eq!(log.fault_events().len(), 2, "added + deleted");
        assert_eq!(log.fault_events()[0].time, SimTime::from_secs(2));
        assert_eq!(log.fault_events()[1].time, SimTime::from_secs(5));
    }

    #[test]
    fn infrastructure_augments_operator_view() {
        use crate::{InfrastructureSubsystem, RoadsideUnit};
        use rdsim_math::Vec2;

        // Vehicle camera limited to 50 m; the parked van 230 m ahead is
        // only visible through the roadside unit.
        let build = |with_unit: bool| {
            let mut world = World::new(town05(), 7);
            world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
            world.spawn_npc_at(
                "slalom-1",
                ActorKind::Vehicle,
                VehicleSpec::van(),
                Behavior::Stationary,
                MetersPerSecond::ZERO,
            );
            let mut infra = InfrastructureSubsystem::new();
            infra.set_vehicle_visibility(Some(Meters::new(50.0)));
            if with_unit {
                infra.add_unit(RoadsideUnit::new(Vec2::new(250.0, 0.0), Meters::new(60.0)));
            }
            let config = RdsSessionConfig {
                camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
                infrastructure: Some(infra),
                ..RdsSessionConfig::default()
            };
            RdsSession::new(world, config, 7)
        };

        struct CountingOp {
            saw_van: bool,
        }
        impl OperatorSubsystem for CountingOp {
            fn on_frame(&mut self, frame: ReceivedFrame) {
                if !frame.snapshot.others.is_empty() {
                    self.saw_van = true;
                }
            }
            fn command(&mut self, _now: SimTime) -> ControlInput {
                ControlInput::COAST
            }
        }

        let mut without = build(false);
        let mut op1 = CountingOp { saw_van: false };
        without.run(&mut op1, SimDuration::from_secs(2));
        assert!(!op1.saw_van, "van hidden beyond vehicle visibility");

        let mut with = build(true);
        let mut op2 = CountingOp { saw_van: false };
        with.run(&mut op2, SimDuration::from_secs(2));
        assert!(op2.saw_van, "roadside unit reveals the van");
    }

    #[test]
    fn determinism_end_to_end() {
        let run = |seed| {
            let mut s = session_with_lead(seed);
            s.schedule_fault(InjectionWindow::new(
                SimTime::from_secs(1),
                SimDuration::from_secs(2),
                PaperFault::Loss5Pct.config(),
            ))
            .unwrap();
            let mut op = ScriptedOperator::constant(ControlInput::new(0.5, 0.0, 0.01));
            s.run(&mut op, SimDuration::from_secs(6));
            let log = s.into_log();
            let last = log.ego_samples().last().copied().unwrap();
            (
                last.position.x,
                last.position.y,
                log.ego_samples().len(),
            )
        };
        assert_eq!(run(11), run(11));
    }
}
