//! The HIL session: vehicle ↔ network ↔ operator in simulated time.

use crate::{
    decode_command, encode_command, EgoSample, IncidentKind, IncidentMark, InfrastructureSubsystem,
    LeadObservation, OperatorSubsystem, OtherSample, ReceivedFrame, RunLog,
};
use rdsim_netem::{
    DuplexLink, FaultInjector, InjectionAction, InjectionWindow, NetemConfig, Packet, PacketKind,
};
use rdsim_obs::{Counter, Histogram, Recorder, TraceId, TraceStage, Tracer};
use rdsim_simulator::{decode_frame_recorded, ActorKind, CameraConfig, SimulatorServer, World};
use rdsim_units::{Meters, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Session configuration.
#[derive(Debug, Clone)]
pub struct RdsSessionConfig {
    /// Fixed simulation step (also the command rate: one command per step).
    pub dt: SimDuration,
    /// Camera configuration for the vehicle's video feed.
    pub camera: CameraConfig,
    /// Horizon for logging lead-vehicle observations.
    pub lead_log_horizon: Meters,
    /// Optional infrastructure subsystem augmenting the operator's view.
    pub infrastructure: Option<InfrastructureSubsystem>,
    /// Telemetry recorder. Defaults to the null recorder, which keeps the
    /// session's own counters working but records nothing else.
    pub recorder: Recorder,
    /// Causal tracer. Defaults to the always-on flight recorder
    /// ([`Tracer::flight_recorder`]): a bounded overwrite-oldest ring that
    /// keeps the most recent trace events at negligible cost, so the run-up
    /// to any incident can be dumped after the fact. [`Tracer::null`]
    /// disables tracing entirely.
    pub tracer: Tracer,
}

impl Default for RdsSessionConfig {
    /// 50 Hz stepping/commands, the paper's 25–30 fps camera, 150 m lead
    /// logging horizon (metrics gate at 100 m downstream).
    fn default() -> Self {
        RdsSessionConfig {
            dt: SimDuration::from_millis(20),
            camera: CameraConfig::default(),
            lead_log_horizon: Meters::new(150.0),
            infrastructure: None,
            recorder: Recorder::null(),
            tracer: Tracer::flight_recorder(),
        }
    }
}

/// Transport-level counters for a session.
///
/// Since the telemetry layer landed this is a *read-out view*: the live
/// tallies are [`rdsim_obs::Counter`]s held by the session (and shared with
/// its recorder's registry, when one is attached); [`RdsSession::stats`]
/// materialises them into this struct. The serialized shape is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SessionStats {
    /// Video frames sent by the vehicle subsystem.
    pub frames_sent: u64,
    /// Frames decoded and shown at the station.
    pub frames_delivered: u64,
    /// Frames that arrived but failed their checksum.
    pub frames_corrupted: u64,
    /// Commands sent by the station.
    pub commands_sent: u64,
    /// Commands applied by the vehicle.
    pub commands_delivered: u64,
    /// Commands that arrived corrupted and were rejected.
    pub commands_corrupted: u64,
}

/// The session's instrument handles, resolved once at construction.
///
/// The six transport counters double as the backing store of
/// [`SessionStats`], so they are always functional: with a null recorder
/// they are detached (cheap atomics nobody else sees), with a live one they
/// appear in the run's `RunTelemetry` under the same names.
#[derive(Debug)]
struct SessionObs {
    frames_sent: Counter,
    frames_delivered: Counter,
    frames_corrupted: Counter,
    commands_sent: Counter,
    commands_delivered: Counter,
    commands_corrupted: Counter,
    steps: Counter,
    /// Packet accounting split by whether a fault rule was active when the
    /// packet was offered / delivered / dropped / rejected.
    win_in_sent: Counter,
    win_in_delivered: Counter,
    win_in_dropped: Counter,
    win_in_corrupted: Counter,
    win_out_sent: Counter,
    win_out_delivered: Counter,
    win_out_dropped: Counter,
    win_out_corrupted: Counter,
    /// Glass-to-glass frame age at display (capture → decode), µs.
    /// Handles held only while a live recorder is attached, so the
    /// disabled path records nothing.
    frame_age_us: Option<std::sync::Arc<Histogram>>,
    /// Command age at application (station send → vehicle apply), µs.
    command_age_us: Option<std::sync::Arc<Histogram>>,
}

impl SessionObs {
    fn new(recorder: &Recorder) -> Self {
        SessionObs {
            frames_sent: recorder.counter("session.frames_sent"),
            frames_delivered: recorder.counter("session.frames_delivered"),
            frames_corrupted: recorder.counter("session.frames_corrupted"),
            commands_sent: recorder.counter("session.commands_sent"),
            commands_delivered: recorder.counter("session.commands_delivered"),
            commands_corrupted: recorder.counter("session.commands_corrupted"),
            steps: recorder.counter("session.steps"),
            win_in_sent: recorder.counter("session.fault_window.inside.sent"),
            win_in_delivered: recorder.counter("session.fault_window.inside.delivered"),
            win_in_dropped: recorder.counter("session.fault_window.inside.dropped"),
            win_in_corrupted: recorder.counter("session.fault_window.inside.corrupted"),
            win_out_sent: recorder.counter("session.fault_window.outside.sent"),
            win_out_delivered: recorder.counter("session.fault_window.outside.delivered"),
            win_out_dropped: recorder.counter("session.fault_window.outside.dropped"),
            win_out_corrupted: recorder.counter("session.fault_window.outside.corrupted"),
            frame_age_us: recorder
                .enabled()
                .then(|| recorder.histogram("session.frame_age_us")),
            command_age_us: recorder
                .enabled()
                .then(|| recorder.histogram("session.command_age_us")),
        }
    }

    /// The `(sent, delivered, dropped, corrupted)` counters for the given
    /// fault-window side.
    fn window(&self, inside: bool) -> (&Counter, &Counter, &Counter, &Counter) {
        if inside {
            (
                &self.win_in_sent,
                &self.win_in_delivered,
                &self.win_in_dropped,
                &self.win_in_corrupted,
            )
        } else {
            (
                &self.win_out_sent,
                &self.win_out_delivered,
                &self.win_out_dropped,
                &self.win_out_corrupted,
            )
        }
    }
}

/// A human-in-the-loop RDS test session (Fig. 3 of the paper): the
/// simulator server streams frames through the emulated network to the
/// operator; the operator's commands stream back through the same faults.
#[derive(Debug)]
pub struct RdsSession {
    server: SimulatorServer,
    link: DuplexLink,
    injector: FaultInjector,
    dt: SimDuration,
    lead_log_horizon: Meters,
    infrastructure: Option<InfrastructureSubsystem>,
    log: RunLog,
    recorder: Recorder,
    tracer: Tracer,
    obs: SessionObs,
    /// Injection-log entries already mirrored as recorder events.
    fault_events_seen: usize,
    frame_seq: u64,
    cmd_seq: u64,
    /// Incident marks emitted so far (moved into the log on completion).
    incidents: Vec<IncidentMark>,
    /// Sequence for incident trace ids.
    incident_seq: u64,
    /// Whether the previous sample was inside a TTC breach (edge detector).
    ttc_breached: bool,
    /// Sequence number of the newest frame shown to the operator — the
    /// causal antecedent stamped onto every emitted command.
    last_displayed_frame: Option<u64>,
    safety: Option<crate::safety::SafetyStack>,
    last_cmd_received_at: Option<SimTime>,
    highest_cmd_seq: Option<u64>,
    /// Sliding delivery/miss window for the vehicle-side loss estimate.
    cmd_window: std::collections::VecDeque<bool>,
}

impl RdsSession {
    /// Creates a session around a world with a spawned ego vehicle.
    ///
    /// # Panics
    ///
    /// Panics if the world has no ego vehicle.
    pub fn new(world: World, config: RdsSessionConfig, seed: u64) -> Self {
        let recorder = config.recorder;
        let tracer = config.tracer;
        let mut server = SimulatorServer::new(world, config.camera, seed);
        server.set_recorder(recorder.clone());
        let mut link = DuplexLink::new(seed ^ 0x6E65_7431);
        link.attach_recorder(&recorder);
        link.attach_tracer(&tracer);
        let obs = SessionObs::new(&recorder);
        RdsSession {
            server,
            link,
            injector: FaultInjector::new(),
            dt: config.dt,
            lead_log_horizon: config.lead_log_horizon,
            infrastructure: config.infrastructure,
            log: RunLog::new(),
            recorder,
            tracer,
            obs,
            fault_events_seen: 0,
            frame_seq: 0,
            cmd_seq: 0,
            incidents: Vec::new(),
            incident_seq: 0,
            ttc_breached: false,
            last_displayed_frame: None,
            safety: None,
            last_cmd_received_at: None,
            highest_cmd_seq: None,
            cmd_window: std::collections::VecDeque::new(),
        }
    }

    /// Installs a vehicle-side safety stack (the paper's test setup runs
    /// without one; this is the hook its methodology exists to evaluate).
    pub fn set_safety_stack(&mut self, stack: crate::safety::SafetyStack) {
        self.safety = Some(stack);
    }

    /// The installed safety stack, if any.
    pub fn safety_stack(&self) -> Option<&crate::safety::SafetyStack> {
        self.safety.as_ref()
    }

    /// The vehicle-side link-quality estimate.
    pub fn qos_estimate(&self) -> crate::safety::QosEstimate {
        let misses = self.cmd_window.iter().filter(|&&m| m).count();
        let loss = if self.cmd_window.is_empty() {
            0.0
        } else {
            misses as f64 / self.cmd_window.len() as f64
        };
        crate::safety::QosEstimate {
            command_age: self
                .last_cmd_received_at
                .map(|t| self.time().saturating_since(t)),
            command_loss: rdsim_units::Ratio::new(loss),
            commands_received: self.obs.commands_delivered.get(),
        }
    }

    fn note_cmd_delivery(&mut self, seq: u64) {
        const WINDOW: usize = 100;
        if let Some(prev) = self.highest_cmd_seq {
            if seq > prev {
                for _ in 0..(seq - prev - 1).min(WINDOW as u64) {
                    self.cmd_window.push_back(true); // missed
                }
            }
        }
        self.cmd_window.push_back(false); // delivered
        while self.cmd_window.len() > WINDOW {
            self.cmd_window.pop_front();
        }
        self.highest_cmd_seq = Some(self.highest_cmd_seq.map_or(seq, |p| p.max(seq)));
    }

    /// The simulated world (read access).
    pub fn world(&self) -> &World {
        self.server.world()
    }

    /// Mutable world access for scenario setup between runs.
    pub fn world_mut(&mut self) -> &mut World {
        self.server.world_mut()
    }

    /// The vehicle-subsystem server.
    pub fn server(&self) -> &SimulatorServer {
        &self.server
    }

    /// Mutable access to the server (e.g. to enable the neutral-fallback
    /// safety hook).
    pub fn server_mut(&mut self) -> &mut SimulatorServer {
        &mut self.server
    }

    /// Transport statistics so far (a read-out of the live counters).
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            frames_sent: self.obs.frames_sent.get(),
            frames_delivered: self.obs.frames_delivered.get(),
            frames_corrupted: self.obs.frames_corrupted.get(),
            commands_sent: self.obs.commands_sent.get(),
            commands_delivered: self.obs.commands_delivered.get(),
            commands_corrupted: self.obs.commands_corrupted.get(),
        }
    }

    /// The session's telemetry recorder (null unless one was configured).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The session's causal tracer (the always-on flight recorder unless
    /// a null tracer was configured).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Safety-incident marks emitted so far.
    pub fn incidents(&self) -> &[IncidentMark] {
        &self.incidents
    }

    fn mark_incident(&mut self, kind: IncidentKind, time: SimTime, stage: TraceStage, arg: u64) {
        let n = self.incident_seq;
        self.incident_seq += 1;
        self.tracer
            .record(TraceId::incident(n), stage, time.as_micros(), arg);
        self.incidents.push(IncidentMark { kind, time });
    }

    /// Current simulation time.
    pub fn time(&self) -> SimTime {
        self.server.world().time()
    }

    /// The session step.
    pub fn dt(&self) -> SimDuration {
        self.dt
    }

    /// Schedules a fault window.
    ///
    /// # Errors
    ///
    /// Returns the conflicting window on overlap.
    #[allow(clippy::result_large_err)] // mirrors FaultInjector::schedule
    pub fn schedule_fault(&mut self, window: InjectionWindow) -> Result<(), InjectionWindow> {
        self.injector.schedule(window)
    }

    /// Injects a rule immediately (test-leader style ad-hoc injection).
    pub fn inject_now(&mut self, config: NetemConfig) {
        let now = self.time();
        self.injector.inject_now(&mut self.link, config, now);
        self.sync_fault_events();
    }

    /// Injects a rule on one direction only — the unidirectional variants
    /// of the related 4G/5G evaluation work.
    pub fn inject_now_on(&mut self, direction: rdsim_netem::Direction, config: NetemConfig) {
        let now = self.time();
        self.injector
            .inject_now_on(&mut self.link, direction, config, now);
        self.sync_fault_events();
    }

    /// Clears the active rule immediately.
    pub fn clear_fault_now(&mut self) {
        let now = self.time();
        self.injector.clear_now(&mut self.link, now);
        self.sync_fault_events();
    }

    /// Mirrors injection-log entries not yet seen as structured recorder
    /// events (`session.fault`) and fault-edge incident marks, stamped
    /// with the transition's sim-time.
    fn sync_fault_events(&mut self) {
        let log = self.injector.log();
        let new: Vec<(SimTime, bool, String)> = log[self.fault_events_seen..]
            .iter()
            .map(|ev| {
                (
                    ev.time,
                    matches!(ev.action, InjectionAction::Added),
                    format!("{} {} {:?}", ev.action, ev.direction, ev.config),
                )
            })
            .collect();
        self.fault_events_seen = log.len();
        for (time, added, note) in new {
            if self.recorder.enabled() {
                self.recorder.event("session.fault", time.as_micros(), note);
            }
            // Fault-window edges are trace incidents: arg 1 = rule added
            // (window opens), 0 = rule deleted (window closes).
            self.mark_incident(
                IncidentKind::FaultEdge,
                time,
                TraceStage::FaultEdge,
                added as u64,
            );
        }
    }

    /// Advances one step: faults, plant, uplink, operator, downlink, log.
    ///
    /// With a live recorder attached, the step's stages are timed into
    /// `session.stage.*_ns` histograms. The link-transfer and operator
    /// stages each record two samples per step (uplink/frame leg and
    /// downlink/command leg), so their histogram counts are 2× the step
    /// count; sums and quantiles remain meaningful per leg.
    pub fn step(&mut self, operator: &mut dyn OperatorSubsystem) {
        self.obs.steps.inc();

        // 1. Fault windows open/close on the pre-step clock.
        let t_pre = self.time();
        self.injector.advance(&mut self.link, t_pre);
        self.sync_fault_events();
        // The window state is constant for the rest of the step (rules
        // only change in stage 1 or between steps), so one flag attributes
        // the whole step's packet accounting.
        let in_window = self.injector.fault_active();
        let (w_sent, w_delivered, w_dropped, w_corrupted) = {
            let (s, d, dr, c) = self.obs.window(in_window);
            (s.clone(), d.clone(), dr.clone(), c.clone())
        };
        let dropped_before = self.link.uplink.stats().dropped + self.link.downlink.stats().dropped;

        // 2. Plant advances and may capture frames.
        let span = self.recorder.span("session.stage.vehicle_tick_ns");
        let frames = self.server.tick(self.dt);
        span.finish();
        let now = self.time();

        // 3. Frames enter the uplink (vehicle → operator).
        let span = self.recorder.span("session.stage.link_transfer_ns");
        for frame in frames {
            self.obs.frames_sent.inc();
            w_sent.inc();
            let seq = self.frame_seq;
            self.frame_seq += 1;
            let id = TraceId::frame(seq);
            let captured_us = frame.captured_at.as_micros();
            self.tracer
                .record(id, TraceStage::Capture, captured_us, frame.frame_id);
            self.tracer.record(
                id,
                TraceStage::Encode,
                captured_us,
                frame.payload.len() as u64,
            );
            self.link
                .uplink
                .send(Packet::new(seq, PacketKind::Video, frame.payload), now);
        }
        let arrived_frames = self.link.uplink.receive(now);
        span.finish();

        // 4. Delivered frames reach the station display.
        let span = self.recorder.span("session.stage.operator_ns");
        for pkt in arrived_frames {
            let id = pkt.trace_id();
            let decoded = decode_frame_recorded(&pkt.payload, &self.recorder);
            match decoded {
                Ok(snapshot) => {
                    self.obs.frames_delivered.inc();
                    w_delivered.inc();
                    self.tracer
                        .record(id, TraceStage::Decode, now.as_micros(), pkt.len() as u64);
                    let snapshot = match &self.infrastructure {
                        Some(infra) => infra.augment(&snapshot),
                        None => snapshot,
                    };
                    let captured_at = snapshot.time;
                    let age_us = now.saturating_since(captured_at).as_micros();
                    if let Some(h) = &self.obs.frame_age_us {
                        h.record(age_us);
                    }
                    self.tracer
                        .record(id, TraceStage::Display, now.as_micros(), age_us);
                    self.last_displayed_frame = Some(pkt.seq);
                    operator.on_frame(ReceivedFrame {
                        snapshot,
                        captured_at,
                        received_at: now,
                    });
                }
                Err(_) => {
                    self.obs.frames_corrupted.inc();
                    w_corrupted.inc();
                    self.tracer.record(
                        id,
                        TraceStage::DecodeFailed,
                        now.as_micros(),
                        pkt.len() as u64,
                    );
                    operator.on_bad_frame(now);
                }
            }
        }
        span.finish();

        // 5. The station samples the operator and sends a command.
        let span = self.recorder.span("session.stage.operator_ns");
        let control = operator.command(now);
        span.finish();
        let seq = self.cmd_seq;
        self.cmd_seq += 1;
        self.obs.commands_sent.inc();
        w_sent.inc();
        // The operator reacted to whatever frame was displayed last, so
        // the command's emit event carries that frame's sequence number —
        // the frame → reaction → command causal link.
        self.tracer.record(
            TraceId::command(seq),
            TraceStage::CommandEmit,
            now.as_micros(),
            self.last_displayed_frame.unwrap_or(u64::MAX),
        );
        let span = self.recorder.span("session.stage.link_transfer_ns");
        self.link.downlink.send(
            Packet::new(seq, PacketKind::Command, encode_command(seq, &control)),
            now,
        );
        let arrived_cmds = self.link.downlink.receive(now);
        span.finish();

        // 6. Delivered commands are applied by the vehicle subsystem.
        for pkt in arrived_cmds {
            let id = pkt.trace_id();
            match decode_command(&pkt.payload) {
                Ok((cmd_seq, ctrl)) => {
                    self.obs.commands_delivered.inc();
                    w_delivered.inc();
                    let age_us = now.saturating_since(pkt.sent_at).as_micros();
                    if let Some(h) = &self.obs.command_age_us {
                        h.record(age_us);
                    }
                    self.tracer
                        .record(id, TraceStage::Actuate, now.as_micros(), age_us);
                    self.note_cmd_delivery(cmd_seq);
                    self.last_cmd_received_at = Some(now);
                    self.server.apply_command(ctrl);
                }
                Err(_) => {
                    self.obs.commands_corrupted.inc();
                    w_corrupted.inc();
                    self.tracer.record(
                        id,
                        TraceStage::DecodeFailed,
                        now.as_micros(),
                        pkt.len() as u64,
                    );
                }
            }
        }

        // Drops happen inside `send`, so the step's delta is attributable
        // to the window state chosen above.
        let dropped_after = self.link.uplink.stats().dropped + self.link.downlink.stats().dropped;
        w_dropped.add(dropped_after - dropped_before);

        // 6b. The safety stack may override the active command based on
        // the vehicle-side QoS estimate — every step, not only when a
        // command arrives (watchdogs act precisely when nothing arrives).
        if self.safety.is_some() {
            let qos = self.qos_estimate();
            let speed = {
                let world = self.server.world();
                world
                    .ego_id()
                    .map(|id| world.actor(id).state().speed)
                    .unwrap_or_default()
            };
            let active = self.server.active_command();
            let Some(stack) = self.safety.as_mut() else {
                unreachable!("checked above")
            };
            let effective = stack.apply(now, &qos, active, speed);
            if effective != active {
                self.server.apply_command(effective);
            }
        }

        // 7. Log one sample.
        let span = self.recorder.span("session.stage.logging_ns");
        self.sample(now);
        span.finish();
    }

    /// Runs for a duration (rounded down to whole steps).
    pub fn run(&mut self, operator: &mut dyn OperatorSubsystem, duration: SimDuration) {
        for _ in 0..duration.div_steps(self.dt) {
            self.step(operator);
        }
    }

    /// Consumes the session, returning the completed run log.
    pub fn into_log(mut self) -> RunLog {
        self.sync_fault_events();
        self.log.set_faults(self.injector.log().to_vec());
        self.log
            .set_duration(self.time().saturating_since(SimTime::ZERO));
        // Surface flight-recorder accounting in the run's telemetry so
        // campaign reports can aggregate it next to `events_dropped`.
        if self.recorder.enabled() && self.tracer.enabled() {
            let overwritten = self.tracer.overwritten();
            self.recorder
                .counter("session.trace.recorded")
                .add(self.tracer.len() as u64 + overwritten);
            self.recorder
                .counter("session.trace.overwritten")
                .add(overwritten);
        }
        let incidents = std::mem::take(&mut self.incidents);
        self.log.set_incidents(incidents);
        self.log
    }

    fn sample(&mut self, now: SimTime) {
        let world = self.server.world();
        let Some(ego_id) = world.ego_id() else { return };
        let ego = world.actor(ego_id);
        let control = ego.applied_control();
        let lead = world
            .ego_lead_gap(self.lead_log_horizon)
            .map(|(actor, gap, closing)| LeadObservation {
                actor,
                gap,
                closing_speed: closing,
            });
        let frame = world.snapshot().frame_id;
        self.log.push_ego(EgoSample {
            t: now,
            frame,
            position: ego.state().position(),
            velocity: ego.state().velocity(),
            speed: ego.state().speed,
            accel: ego.state().accel,
            throttle: control.throttle.get(),
            steer: control.steer,
            brake: control.brake.get(),
            lead,
        });
        let ego_pos = ego.state().position();
        let others: Vec<OtherSample> = world
            .actors()
            .iter()
            .filter(|a| {
                a.id() != ego_id && a.kind() == ActorKind::Vehicle && !a.is_stationary_behavior()
            })
            .map(|a| OtherSample {
                actor: a.id(),
                t: now,
                frame,
                distance_from_ego: ego_pos.distance_m(a.state().position()),
                position: a.state().position(),
                speed: a.state().speed,
            })
            .collect();
        for o in others {
            self.log.push_other(o);
        }
        // TTC breach-entry detection, mirroring the offline TTC metric's
        // defaults (gate 100 m, min closing 1 m/s, threshold 6 s). Only the
        // entry edge marks an incident; the flag resets when TTC recovers.
        const TTC_MAX_GAP_M: f64 = 100.0;
        const TTC_MIN_CLOSING_MPS: f64 = 1.0;
        const TTC_THRESHOLD_S: f64 = 6.0;
        let ttc_s = lead.as_ref().and_then(|l| {
            let (gap, closing) = (l.gap.get(), l.closing_speed.get());
            (gap <= TTC_MAX_GAP_M && closing >= TTC_MIN_CLOSING_MPS).then(|| gap / closing)
        });
        let breached = ttc_s.is_some_and(|t| t < TTC_THRESHOLD_S);
        if breached && !self.ttc_breached {
            let ttc_us = (ttc_s.unwrap_or_default() * 1e6) as u64;
            self.mark_incident(IncidentKind::TtcBreach, now, TraceStage::Incident, ttc_us);
        }
        self.ttc_breached = breached;
        let world = self.server.world_mut();
        let collisions = world.drain_collisions();
        let invasions = world.drain_lane_invasions();
        for c in &collisions {
            // Incident arg: impact severity as |relative speed| in mm/s.
            let severity = (c.relative_speed.get().abs() * 1_000.0) as u64;
            self.mark_incident(
                IncidentKind::Collision,
                c.time,
                TraceStage::Incident,
                severity,
            );
        }
        self.log.extend_collisions(collisions);
        self.log.extend_lane_invasions(invasions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PaperFault, ScriptedOperator};
    use rdsim_netem::InjectionWindow;
    use rdsim_roadnet::town05;
    use rdsim_simulator::Behavior;
    use rdsim_simulator::LaneFollowConfig;
    use rdsim_units::{Hertz, MetersPerSecond};
    use rdsim_vehicle::{ControlInput, VehicleSpec};

    fn session_with_lead(seed: u64) -> RdsSession {
        let mut world = World::new(town05(), seed);
        world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
        world.spawn_npc_at(
            "lead-start",
            ActorKind::Vehicle,
            VehicleSpec::passenger_car(),
            Behavior::LaneFollow(LaneFollowConfig::urban(MetersPerSecond::new(8.0))),
            MetersPerSecond::new(8.0),
        );
        let config = RdsSessionConfig {
            camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
            ..RdsSessionConfig::default()
        };
        RdsSession::new(world, config, seed)
    }

    #[test]
    fn fault_free_session_runs_and_logs() {
        let mut s = session_with_lead(1);
        let mut op = ScriptedOperator::constant(ControlInput::new(0.5, 0.0, 0.0));
        s.run(&mut op, SimDuration::from_secs(10));
        let stats = s.stats();
        assert_eq!(stats.commands_sent, 500);
        assert_eq!(stats.commands_delivered, 500);
        assert_eq!(stats.frames_corrupted, 0);
        assert!(
            stats.frames_delivered >= 245,
            "≈250 frames in 10 s at 25 fps"
        );
        assert_eq!(stats.frames_delivered, stats.frames_sent);
        assert!(op.frames_seen() >= 245);

        let log = s.into_log();
        assert_eq!(log.ego_samples().len(), 500);
        assert!(!log.other_samples().is_empty(), "lead vehicle is logged");
        assert!(log.has_lead_data());
        assert_eq!(log.duration(), SimDuration::from_secs(10));
        // The ego actually moved under the operator's throttle.
        let last = log.ego_samples().last().unwrap();
        assert!(last.speed.get() > 5.0);
    }

    #[test]
    fn delay_fault_postpones_frames_and_commands() {
        let mut s = session_with_lead(2);
        s.schedule_fault(InjectionWindow::new(
            SimTime::ZERO,
            SimDuration::from_secs(3600),
            PaperFault::Delay50ms.config(),
        ))
        .unwrap();
        let mut op = ScriptedOperator::constant(ControlInput::new(0.5, 0.0, 0.0));
        // Step a few times: commands take 50 ms to arrive, so the first
        // few steps leave the plant coasting.
        for _ in 0..2 {
            s.step(&mut op);
        }
        assert_eq!(s.stats().commands_sent, 2);
        assert_eq!(s.stats().commands_delivered, 0, "50 ms not yet elapsed");
        for _ in 0..3 {
            s.step(&mut op);
        }
        assert!(s.stats().commands_delivered > 0, "after 100 ms they land");
        // Frame latency visible end to end.
        let log = s.into_log();
        assert_eq!(log.fault_events().len(), 1);
    }

    #[test]
    fn loss_fault_drops_traffic() {
        let mut s = session_with_lead(3);
        s.inject_now(NetemConfig::default().with_loss(rdsim_units::Ratio::from_percent(50.0)));
        let mut op = ScriptedOperator::constant(ControlInput::new(0.4, 0.0, 0.0));
        s.run(&mut op, SimDuration::from_secs(20));
        let stats = s.stats();
        assert!(stats.commands_delivered < stats.commands_sent * 7 / 10);
        assert!(stats.frames_delivered < stats.frames_sent * 7 / 10);
        assert!(stats.commands_delivered > stats.commands_sent * 3 / 10);
    }

    #[test]
    fn corruption_rejected_by_checksums() {
        let mut s = session_with_lead(4);
        s.inject_now(NetemConfig::default().with_corrupt(rdsim_units::Ratio::from_percent(50.0)));
        let mut op = ScriptedOperator::constant(ControlInput::new(0.4, 0.0, 0.0));
        s.run(&mut op, SimDuration::from_secs(10));
        let stats = s.stats();
        assert!(stats.frames_corrupted > 0 || stats.commands_corrupted > 0);
        // Commands were either applied intact or rejected — never mangled:
        // the throttle the plant saw is exactly the scripted 0.4.
        assert!((s.server().active_command().throttle.get() - 0.4).abs() < 1e-12);
        // Corrupted frames surfaced as bad-frame notifications.
        assert_eq!(stats.frames_corrupted, op.bad_frames());
    }

    #[test]
    fn adhoc_injection_logs_events() {
        let mut s = session_with_lead(5);
        let mut op = ScriptedOperator::constant(ControlInput::COAST);
        s.run(&mut op, SimDuration::from_secs(1));
        s.inject_now(PaperFault::Loss5Pct.config());
        s.run(&mut op, SimDuration::from_secs(1));
        s.clear_fault_now();
        s.run(&mut op, SimDuration::from_secs(1));
        let log = s.into_log();
        assert_eq!(log.fault_events().len(), 2);
        assert_eq!(
            PaperFault::from_config(&log.fault_events()[0].config),
            Some(PaperFault::Loss5Pct)
        );
    }

    #[test]
    fn scheduled_window_attributed_in_log() {
        let mut s = session_with_lead(6);
        s.schedule_fault(InjectionWindow::new(
            SimTime::from_secs(2),
            SimDuration::from_secs(3),
            PaperFault::Delay25ms.config(),
        ))
        .unwrap();
        let mut op = ScriptedOperator::constant(ControlInput::new(0.3, 0.0, 0.0));
        s.run(&mut op, SimDuration::from_secs(8));
        let log = s.into_log();
        assert_eq!(log.fault_events().len(), 2, "added + deleted");
        assert_eq!(log.fault_events()[0].time, SimTime::from_secs(2));
        assert_eq!(log.fault_events()[1].time, SimTime::from_secs(5));
    }

    #[test]
    fn infrastructure_augments_operator_view() {
        use crate::{InfrastructureSubsystem, RoadsideUnit};
        use rdsim_math::Vec2;

        // Vehicle camera limited to 50 m; the parked van 230 m ahead is
        // only visible through the roadside unit.
        let build = |with_unit: bool| {
            let mut world = World::new(town05(), 7);
            world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
            world.spawn_npc_at(
                "slalom-1",
                ActorKind::Vehicle,
                VehicleSpec::van(),
                Behavior::Stationary,
                MetersPerSecond::ZERO,
            );
            let mut infra = InfrastructureSubsystem::new();
            infra.set_vehicle_visibility(Some(Meters::new(50.0)));
            if with_unit {
                infra.add_unit(RoadsideUnit::new(Vec2::new(250.0, 0.0), Meters::new(60.0)));
            }
            let config = RdsSessionConfig {
                camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
                infrastructure: Some(infra),
                ..RdsSessionConfig::default()
            };
            RdsSession::new(world, config, 7)
        };

        struct CountingOp {
            saw_van: bool,
        }
        impl OperatorSubsystem for CountingOp {
            fn on_frame(&mut self, frame: ReceivedFrame) {
                if !frame.snapshot.others.is_empty() {
                    self.saw_van = true;
                }
            }
            fn command(&mut self, _now: SimTime) -> ControlInput {
                ControlInput::COAST
            }
        }

        let mut without = build(false);
        let mut op1 = CountingOp { saw_van: false };
        without.run(&mut op1, SimDuration::from_secs(2));
        assert!(!op1.saw_van, "van hidden beyond vehicle visibility");

        let mut with = build(true);
        let mut op2 = CountingOp { saw_van: false };
        with.run(&mut op2, SimDuration::from_secs(2));
        assert!(op2.saw_van, "roadside unit reveals the van");
    }

    fn recorded_session_with_lead(seed: u64, recorder: Recorder) -> RdsSession {
        let mut world = World::new(town05(), seed);
        world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
        world.spawn_npc_at(
            "lead-start",
            ActorKind::Vehicle,
            VehicleSpec::passenger_car(),
            Behavior::LaneFollow(LaneFollowConfig::urban(MetersPerSecond::new(8.0))),
            MetersPerSecond::new(8.0),
        );
        let config = RdsSessionConfig {
            camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
            recorder,
            ..RdsSessionConfig::default()
        };
        RdsSession::new(world, config, seed)
    }

    #[test]
    fn telemetry_mirrors_stats_and_measures_ages() {
        let registry = rdsim_obs::Registry::new();
        let mut s = recorded_session_with_lead(8, registry.recorder());
        s.inject_now(PaperFault::Delay50ms.config());
        let mut op = ScriptedOperator::constant(ControlInput::new(0.4, 0.0, 0.0));
        s.run(&mut op, SimDuration::from_secs(4));
        let stats = s.stats();
        let t = registry.snapshot();

        // SessionStats is a read-out of the same counters the registry sees.
        assert_eq!(t.counter("session.frames_sent"), stats.frames_sent);
        assert_eq!(
            t.counter("session.frames_delivered"),
            stats.frames_delivered
        );
        assert_eq!(t.counter("session.commands_sent"), stats.commands_sent);
        assert_eq!(
            t.counter("session.commands_delivered"),
            stats.commands_delivered
        );
        assert_eq!(t.counter("session.steps"), 200, "4 s at 50 Hz");

        // Glass-to-glass ages reflect the 50 ms rule (plus capture→send
        // queueing for frames, which only raises the age).
        let fa = t.histogram("session.frame_age_us").expect("frame ages");
        assert_eq!(fa.count, stats.frames_delivered);
        assert!(fa.min >= 50_000, "frame age floor is the link delay");
        let ca = t.histogram("session.command_age_us").expect("command ages");
        assert_eq!(ca.count, stats.commands_delivered);
        assert!(ca.min >= 50_000 && ca.p50() >= 50_000);

        // The rule was active the whole run, so every packet is inside.
        assert_eq!(
            t.counter("session.fault_window.inside.sent"),
            stats.frames_sent + stats.commands_sent
        );
        assert_eq!(t.counter("session.fault_window.outside.sent"), 0);

        // The injection shows up as a structured event at sim-time zero.
        let faults: Vec<_> = t
            .events
            .iter()
            .filter(|e| e.name == "session.fault")
            .collect();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].sim_us, 0);
        assert!(faults[0].note.starts_with("added both"));

        // Stage timings cover every step (2 samples/step for the legged
        // stages, as documented on `step`).
        let steps = t.counter("session.steps");
        for (name, per_step) in [
            ("session.stage.vehicle_tick_ns", 1),
            ("session.stage.link_transfer_ns", 2),
            ("session.stage.operator_ns", 2),
            ("session.stage.logging_ns", 1),
        ] {
            let h = t.histogram(name).expect(name);
            assert_eq!(h.count, steps * per_step, "{name}");
        }

        // The codec hooks fired for every encode/decode.
        assert_eq!(
            t.histogram("codec.encode_ns").expect("encode").count,
            stats.frames_sent
        );
        assert_eq!(
            t.histogram("codec.decode_ns").expect("decode").count,
            stats.frames_delivered + stats.frames_corrupted
        );
    }

    #[test]
    fn recorder_event_stream_is_deterministic() {
        let run = |seed| {
            let registry = rdsim_obs::Registry::new();
            let mut s = recorded_session_with_lead(seed, registry.recorder());
            s.schedule_fault(InjectionWindow::new(
                SimTime::from_secs(1),
                SimDuration::from_secs(2),
                PaperFault::Loss5Pct.config(),
            ))
            .unwrap();
            let mut op = ScriptedOperator::constant(ControlInput::new(0.5, 0.0, 0.01));
            s.run(&mut op, SimDuration::from_secs(5));
            drop(s);
            let t = registry.snapshot();
            let keys: Vec<_> = t.events.iter().map(|e| e.deterministic_key()).collect();
            (keys, t.counters.clone())
        };
        let (events_a, counters_a) = run(11);
        let (events_b, counters_b) = run(11);
        assert_eq!(events_a, events_b, "sim-time-stamped event streams");
        assert_eq!(counters_a, counters_b, "all counters, incl. fault-window");
        assert!(!events_a.is_empty(), "window open + close were mirrored");
    }

    #[test]
    fn tracer_records_complete_lineages() {
        use rdsim_obs::{ArtifactKind, TraceStage};
        let mut s = session_with_lead(13);
        assert!(s.tracer().enabled(), "flight recorder is on by default");
        let mut op = ScriptedOperator::constant(ControlInput::new(0.5, 0.0, 0.0));
        s.run(&mut op, SimDuration::from_secs(5));
        let stats = s.stats();
        let log = s.tracer().log();

        // Every delivered frame has a full capture → display lineage and
        // every applied command a full emit → actuate lineage.
        assert_eq!(
            log.complete_lineages(
                ArtifactKind::Frame,
                TraceStage::Capture,
                TraceStage::Display
            ),
            stats.frames_delivered
        );
        assert_eq!(
            log.complete_lineages(
                ArtifactKind::Command,
                TraceStage::CommandEmit,
                TraceStage::Actuate
            ),
            stats.commands_delivered
        );
        // A frame's lineage passes through the qdisc in causal order.
        let lineage = log.lineage(rdsim_obs::TraceId::frame(10));
        let stages: Vec<TraceStage> = lineage.iter().map(|e| e.stage).collect();
        assert_eq!(
            stages,
            vec![
                TraceStage::Capture,
                TraceStage::Encode,
                TraceStage::NetemEnqueue,
                TraceStage::NetemDeliver,
                TraceStage::Decode,
                TraceStage::Display,
            ]
        );
        // Commands reference the frame the operator last saw.
        let emit = log
            .events
            .iter()
            .rfind(|e| e.stage == TraceStage::CommandEmit)
            .expect("commands were emitted");
        assert!(emit.arg < stats.frames_delivered, "a real frame seq");
    }

    #[test]
    fn fault_edges_become_incident_marks() {
        let mut s = session_with_lead(14);
        let mut op = ScriptedOperator::constant(ControlInput::COAST);
        s.run(&mut op, SimDuration::from_secs(1));
        s.inject_now(PaperFault::Loss5Pct.config());
        s.run(&mut op, SimDuration::from_secs(1));
        s.clear_fault_now();
        assert_eq!(s.incidents().len(), 2, "added + deleted edges");
        assert!(s
            .incidents()
            .iter()
            .all(|i| i.kind == crate::IncidentKind::FaultEdge));
        let edge_time = s.incidents()[0].time;
        let trace = s.tracer().log();
        let edges: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.stage == TraceStage::FaultEdge)
            .collect();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].arg, 1, "rule added");
        assert_eq!(edges[1].arg, 0, "rule deleted");
        let log = s.into_log();
        assert_eq!(log.incidents().len(), 2, "marks move into the run log");
        assert_eq!(log.incidents()[0].time, edge_time);
    }

    #[test]
    fn trace_stream_is_deterministic() {
        let run = |seed| {
            let mut s = session_with_lead(seed);
            s.schedule_fault(InjectionWindow::new(
                SimTime::from_secs(1),
                SimDuration::from_secs(2),
                PaperFault::Loss5Pct.config(),
            ))
            .unwrap();
            let mut op = ScriptedOperator::constant(ControlInput::new(0.5, 0.0, 0.01));
            s.run(&mut op, SimDuration::from_secs(5));
            s.tracer().log()
        };
        let a = run(11);
        assert_eq!(a, run(11), "sim-time-only stamps replay identically");
        assert!(!a.events.is_empty());
        assert_ne!(a, run(12));
    }

    #[test]
    fn null_tracer_disables_tracing() {
        let mut world = World::new(town05(), 15);
        world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
        let config = RdsSessionConfig {
            camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
            tracer: Tracer::null(),
            ..RdsSessionConfig::default()
        };
        let mut s = RdsSession::new(world, config, 15);
        let mut op = ScriptedOperator::constant(ControlInput::COAST);
        s.run(&mut op, SimDuration::from_secs(1));
        assert!(!s.tracer().enabled());
        assert!(s.tracer().log().is_empty());
    }

    #[test]
    fn null_recorder_session_still_counts() {
        let mut s = session_with_lead(12);
        assert!(!s.recorder().enabled());
        let mut op = ScriptedOperator::constant(ControlInput::new(0.3, 0.0, 0.0));
        s.run(&mut op, SimDuration::from_secs(1));
        // Stats flow through detached counters without a registry.
        assert_eq!(s.stats().commands_sent, 50);
        assert!(s.stats().frames_delivered > 0);
    }

    #[test]
    fn determinism_end_to_end() {
        let run = |seed| {
            let mut s = session_with_lead(seed);
            s.schedule_fault(InjectionWindow::new(
                SimTime::from_secs(1),
                SimDuration::from_secs(2),
                PaperFault::Loss5Pct.config(),
            ))
            .unwrap();
            let mut op = ScriptedOperator::constant(ControlInput::new(0.5, 0.0, 0.01));
            s.run(&mut op, SimDuration::from_secs(6));
            let log = s.into_log();
            let last = log.ego_samples().last().copied().unwrap();
            (last.position.x, last.position.y, log.ego_samples().len())
        };
        assert_eq!(run(11), run(11));
    }
}
