//! The optional infrastructure subsystem (§III.A): roadside sensing that
//! augments the operator's environment perception.

use rdsim_math::Vec2;
use rdsim_simulator::{ActorSnapshot, WorldSnapshot};
use rdsim_units::Meters;
use serde::{Deserialize, Serialize};

/// A roadside sensing unit: sees every actor within `range` of its
/// position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoadsideUnit {
    /// Unit position.
    pub position: Vec2,
    /// Sensing radius.
    pub range: Meters,
}

impl RoadsideUnit {
    /// Creates a unit.
    pub fn new(position: Vec2, range: Meters) -> Self {
        RoadsideUnit { position, range }
    }

    /// `true` if the unit can see the given actor.
    pub fn sees(&self, actor: &ActorSnapshot) -> bool {
        actor.pose.position.distance(self.position) <= self.range.get()
    }
}

/// The infrastructure subsystem: a set of roadside units whose
/// observations are merged into the frames shown to the operator,
/// "improving the environment perception by providing more sensor data
/// from additional sources than the vehicle subsystem".
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InfrastructureSubsystem {
    units: Vec<RoadsideUnit>,
    /// Vehicle-camera visibility radius around the ego; actors beyond it
    /// are only visible through roadside units.
    vehicle_visibility: Option<Meters>,
}

impl InfrastructureSubsystem {
    /// Creates an empty subsystem (no units: frames pass through).
    pub fn new() -> Self {
        InfrastructureSubsystem::default()
    }

    /// Adds a roadside unit.
    pub fn add_unit(&mut self, unit: RoadsideUnit) -> &mut Self {
        self.units.push(unit);
        self
    }

    /// Limits what the vehicle's own camera sees, so infrastructure
    /// coverage becomes observable in the merged view.
    pub fn set_vehicle_visibility(&mut self, radius: Option<Meters>) {
        self.vehicle_visibility = radius;
    }

    /// The configured units.
    pub fn units(&self) -> &[RoadsideUnit] {
        &self.units
    }

    /// Merges infrastructure observations into a vehicle-camera snapshot:
    /// actors outside the vehicle's visibility are retained only if some
    /// roadside unit sees them.
    pub fn augment(&self, snapshot: &WorldSnapshot) -> WorldSnapshot {
        let Some(visibility) = self.vehicle_visibility else {
            // Unlimited vehicle camera: nothing to add or remove.
            return snapshot.clone();
        };
        let ego_pos = snapshot.ego.as_ref().map(|e| e.pose.position);
        let visible = |a: &ActorSnapshot| -> bool {
            let by_vehicle = ego_pos
                .map(|p| a.pose.position.distance(p) <= visibility.get())
                .unwrap_or(false);
            by_vehicle || self.units.iter().any(|u| u.sees(a))
        };
        WorldSnapshot {
            time: snapshot.time,
            frame_id: snapshot.frame_id,
            ego: snapshot.ego,
            others: snapshot
                .others
                .iter()
                .filter(|a| visible(a))
                .copied()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdsim_math::Pose2;
    use rdsim_simulator::{ActorId, ActorKind};
    use rdsim_units::{MetersPerSecond, Radians, SimTime};

    fn actor(id: u32, x: f64) -> ActorSnapshot {
        ActorSnapshot {
            id: ActorId(id),
            kind: ActorKind::Vehicle,
            pose: Pose2::new(Vec2::new(x, 0.0), Radians::new(0.0)),
            speed: MetersPerSecond::ZERO,
            length: Meters::new(4.6),
            width: Meters::new(1.85),
        }
    }

    fn scene() -> WorldSnapshot {
        WorldSnapshot {
            time: SimTime::ZERO,
            frame_id: 1,
            ego: Some(actor(0, 0.0)),
            others: vec![actor(1, 30.0), actor(2, 200.0), actor(3, 400.0)],
        }
    }

    #[test]
    fn no_units_unlimited_visibility_passthrough() {
        let infra = InfrastructureSubsystem::new();
        assert_eq!(infra.augment(&scene()), scene());
    }

    #[test]
    fn limited_vehicle_camera_hides_far_actors() {
        let mut infra = InfrastructureSubsystem::new();
        infra.set_vehicle_visibility(Some(Meters::new(100.0)));
        let out = infra.augment(&scene());
        let ids: Vec<u32> = out.others.iter().map(|a| a.id.0).collect();
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn roadside_unit_restores_coverage() {
        let mut infra = InfrastructureSubsystem::new();
        infra.set_vehicle_visibility(Some(Meters::new(100.0)));
        infra.add_unit(RoadsideUnit::new(Vec2::new(200.0, 0.0), Meters::new(50.0)));
        let out = infra.augment(&scene());
        let ids: Vec<u32> = out.others.iter().map(|a| a.id.0).collect();
        assert_eq!(ids, vec![1, 2], "unit at x=200 restores actor 2 only");
        assert_eq!(infra.units().len(), 1);
    }

    #[test]
    fn unit_visibility_radius() {
        let unit = RoadsideUnit::new(Vec2::new(100.0, 0.0), Meters::new(50.0));
        assert!(unit.sees(&actor(1, 120.0)));
        assert!(unit.sees(&actor(1, 150.0)));
        assert!(!unit.sees(&actor(1, 151.0)));
    }
}
