//! Deterministic digests over run data — the substrate of the
//! determinism-equivalence harness.
//!
//! [`Digestible`] folds a value into a [`StableHasher`] field by field, in
//! declaration order, using only simulation-visible state: positions,
//! velocities, control inputs, collision/lane events, fault-injection
//! decisions and incident marks. Wall-clock quantities never enter a
//! digest — two runs of the same seed on machines of different speed must
//! digest identically.
//!
//! Digests are **specified**, not incidental: they are compared across
//! serial and parallel campaign execution, across `--jobs` values, and
//! against golden files checked into the repository, so every impl here
//! must write an unambiguous, framed encoding (length prefixes for
//! sequences, presence bytes for options, tag bytes for enums).

use crate::runlog::{EgoSample, IncidentKind, IncidentMark, LeadObservation, OtherSample};
use crate::{RunKind, RunLog, RunRecord, ScheduledFault};
use rdsim_math::StableHasher;
use rdsim_netem::{
    DelayConfig, Direction, InjectionAction, InjectionEvent, InjectionWindow, LossConfig,
    NetemConfig, ReorderConfig,
};
use rdsim_obs::{Timeline, TimelineWindow};
use rdsim_simulator::{CollisionEvent, LaneInvasionEvent};

/// A value with a stable, platform-independent digest.
pub trait Digestible {
    /// Folds this value into `h`.
    fn digest_into(&self, h: &mut StableHasher);

    /// The value's digest as a standalone 64-bit hash.
    fn digest(&self) -> u64 {
        let mut h = StableHasher::new();
        self.digest_into(&mut h);
        h.finish()
    }
}

impl<T: Digestible> Digestible for [T] {
    fn digest_into(&self, h: &mut StableHasher) {
        h.write_usize(self.len());
        for item in self {
            item.digest_into(h);
        }
    }
}

impl<T: Digestible> Digestible for Vec<T> {
    fn digest_into(&self, h: &mut StableHasher) {
        self.as_slice().digest_into(h);
    }
}

impl<T: Digestible> Digestible for Option<T> {
    fn digest_into(&self, h: &mut StableHasher) {
        match self {
            Some(value) => {
                h.write_bool(true);
                value.digest_into(h);
            }
            None => h.write_bool(false),
        }
    }
}

impl Digestible for LeadObservation {
    fn digest_into(&self, h: &mut StableHasher) {
        h.write_u32(self.actor.0);
        h.write_f64(self.gap.get());
        h.write_f64(self.closing_speed.get());
    }
}

impl Digestible for EgoSample {
    fn digest_into(&self, h: &mut StableHasher) {
        h.write_u64(self.t.as_micros());
        h.write_u64(self.frame);
        h.write_f64(self.position.x);
        h.write_f64(self.position.y);
        h.write_f64(self.velocity.x);
        h.write_f64(self.velocity.y);
        h.write_f64(self.speed.get());
        h.write_f64(self.accel.get());
        h.write_f64(self.throttle);
        h.write_f64(self.steer);
        h.write_f64(self.brake);
        self.lead.digest_into(h);
    }
}

impl Digestible for OtherSample {
    fn digest_into(&self, h: &mut StableHasher) {
        h.write_u32(self.actor.0);
        h.write_u64(self.t.as_micros());
        h.write_u64(self.frame);
        h.write_f64(self.distance_from_ego.get());
        h.write_f64(self.position.x);
        h.write_f64(self.position.y);
        h.write_f64(self.speed.get());
    }
}

impl Digestible for CollisionEvent {
    fn digest_into(&self, h: &mut StableHasher) {
        h.write_u64(self.time.as_micros());
        h.write_u64(self.frame_id);
        h.write_u32(self.ego.0);
        h.write_u32(self.other.0);
        h.write_f64(self.relative_speed.get());
    }
}

impl Digestible for LaneInvasionEvent {
    fn digest_into(&self, h: &mut StableHasher) {
        h.write_u64(self.time.as_micros());
        h.write_u64(self.frame_id);
        h.write_u32(self.actor.0);
        h.write_u32(self.lane.0);
        h.write_f64(self.lateral.get());
    }
}

impl Digestible for DelayConfig {
    fn digest_into(&self, h: &mut StableHasher) {
        h.write_f64(self.base.get());
        h.write_f64(self.jitter.get());
        h.write_f64(self.correlation.get());
    }
}

impl Digestible for LossConfig {
    fn digest_into(&self, h: &mut StableHasher) {
        match *self {
            LossConfig::Random {
                probability,
                correlation,
            } => {
                h.write_u32(0);
                h.write_f64(probability.get());
                h.write_f64(correlation.get());
            }
            LossConfig::GilbertElliott {
                p,
                r,
                loss_in_bad,
                loss_in_good,
            } => {
                h.write_u32(1);
                h.write_f64(p.get());
                h.write_f64(r.get());
                h.write_f64(loss_in_bad.get());
                h.write_f64(loss_in_good.get());
            }
        }
    }
}

impl Digestible for ReorderConfig {
    fn digest_into(&self, h: &mut StableHasher) {
        h.write_f64(self.probability.get());
        h.write_f64(self.correlation.get());
        h.write_u32(self.gap);
    }
}

impl Digestible for NetemConfig {
    fn digest_into(&self, h: &mut StableHasher) {
        self.delay.digest_into(h);
        self.loss.digest_into(h);
        match self.duplicate {
            Some(r) => {
                h.write_bool(true);
                h.write_f64(r.get());
            }
            None => h.write_bool(false),
        }
        match self.corrupt {
            Some(r) => {
                h.write_bool(true);
                h.write_f64(r.get());
            }
            None => h.write_bool(false),
        }
        self.reorder.digest_into(h);
        match self.rate {
            Some(r) => {
                h.write_bool(true);
                h.write_u64(r.bits_per_second);
            }
            None => h.write_bool(false),
        }
        // Encoded only when set so configs without a limit keep the
        // digests they had before the field existed.
        if let Some(limit) = self.limit {
            h.write_bool(true);
            h.write_u32(limit);
        }
    }
}

impl Digestible for Direction {
    fn digest_into(&self, h: &mut StableHasher) {
        h.write_u32(match self {
            Direction::Both => 0,
            Direction::Uplink => 1,
            Direction::Downlink => 2,
        });
    }
}

impl Digestible for InjectionAction {
    fn digest_into(&self, h: &mut StableHasher) {
        h.write_u32(match self {
            InjectionAction::Added => 0,
            InjectionAction::Deleted => 1,
        });
    }
}

impl Digestible for InjectionEvent {
    fn digest_into(&self, h: &mut StableHasher) {
        h.write_u64(self.time.as_micros());
        self.config.digest_into(h);
        self.action.digest_into(h);
        self.direction.digest_into(h);
    }
}

impl Digestible for InjectionWindow {
    fn digest_into(&self, h: &mut StableHasher) {
        h.write_u64(self.start.as_micros());
        h.write_u64(self.duration.as_micros());
        self.config.digest_into(h);
    }
}

impl Digestible for IncidentKind {
    fn digest_into(&self, h: &mut StableHasher) {
        h.write_str(self.label());
    }
}

impl Digestible for IncidentMark {
    fn digest_into(&self, h: &mut StableHasher) {
        self.kind.digest_into(h);
        h.write_u64(self.time.as_micros());
    }
}

impl Digestible for RunKind {
    fn digest_into(&self, h: &mut StableHasher) {
        h.write_u32(match self {
            RunKind::Training => 0,
            RunKind::Golden => 1,
            RunKind::Faulty => 2,
        });
    }
}

impl Digestible for ScheduledFault {
    fn digest_into(&self, h: &mut StableHasher) {
        h.write_str(self.fault.label());
        self.window.digest_into(h);
    }
}

impl Digestible for TimelineWindow {
    fn digest_into(&self, h: &mut StableHasher) {
        h.write_u64(self.frame_count);
        h.write_u64(self.frame_age_sum_us);
        h.write_u64(self.frame_age_max_us);
        h.write_u64(self.encode_sum_us);
        h.write_u64(self.encode_max_us);
        h.write_u64(self.queue_sum_us);
        h.write_u64(self.queue_max_us);
        h.write_u64(self.prop_sum_us);
        h.write_u64(self.prop_max_us);
        h.write_u64(self.display_sum_us);
        h.write_u64(self.display_max_us);
        h.write_u64(self.cmd_count);
        h.write_u64(self.cmd_age_sum_us);
        h.write_u64(self.cmd_age_max_us);
        h.write_u64(self.up_dropped);
        h.write_u64(self.up_queue_dropped);
        h.write_u64(self.up_delayed);
        h.write_u64(self.up_duplicated);
        h.write_u64(self.up_reordered);
        h.write_u64(self.up_queue_max);
        h.write_u64(self.down_dropped);
        h.write_u64(self.down_queue_dropped);
        h.write_u64(self.down_delayed);
        h.write_u64(self.down_duplicated);
        h.write_u64(self.down_reordered);
        h.write_u64(self.down_queue_max);
        h.write_u64(self.min_gated_ttc_us);
        h.write_u64(self.srr_reversals);
        h.write_u64(self.speed_sum_mmps);
        h.write_u64(self.speed_samples);
        h.write_u64(self.fault_bits);
    }
}

impl Digestible for Timeline {
    fn digest_into(&self, h: &mut StableHasher) {
        h.write_u64(self.width_us());
        self.windows().digest_into(h);
    }
}

impl Digestible for RunLog {
    fn digest_into(&self, h: &mut StableHasher) {
        self.ego_samples().digest_into(h);
        self.other_samples().digest_into(h);
        self.collisions().digest_into(h);
        self.lane_invasions().digest_into(h);
        self.fault_events().digest_into(h);
        self.incidents().digest_into(h);
        h.write_u64(self.duration().as_micros());
    }
}

impl Digestible for RunRecord {
    fn digest_into(&self, h: &mut StableHasher) {
        h.write_str(&self.subject);
        self.kind.digest_into(h);
        self.log.digest_into(h);
        self.schedule.digest_into(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdsim_math::Vec2;
    use rdsim_simulator::ActorId;
    use rdsim_units::{Meters, MetersPerSecond, MetersPerSecond2, SimDuration, SimTime};

    fn ego(t_ms: u64, steer: f64) -> EgoSample {
        EgoSample {
            t: SimTime::from_millis(t_ms),
            frame: t_ms / 40,
            position: Vec2::new(t_ms as f64 * 0.2, 1.5),
            velocity: Vec2::new(10.0, 0.0),
            speed: MetersPerSecond::new(10.0),
            accel: MetersPerSecond2::ZERO,
            throttle: 0.4,
            steer,
            brake: 0.0,
            lead: Some(LeadObservation {
                actor: ActorId(2),
                gap: Meters::new(42.0),
                closing_speed: MetersPerSecond::new(0.5),
            }),
        }
    }

    fn log() -> RunLog {
        RunLog::from_parts(
            vec![ego(0, 0.1), ego(20, -0.05)],
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            SimDuration::from_millis(40),
        )
    }

    #[test]
    fn digest_is_deterministic() {
        assert_eq!(log().digest(), log().digest());
    }

    #[test]
    fn digest_sees_every_logged_field() {
        let base = log().digest();

        let mut steer_changed = log();
        steer_changed.redact_steering();
        assert_ne!(base, steer_changed.digest(), "steer must enter the digest");

        let mut lead_dropped = log();
        lead_dropped.redact_lead_observations();
        assert_ne!(base, lead_dropped.digest(), "lead must enter the digest");
    }

    #[test]
    fn record_digest_covers_subject_kind_and_schedule() {
        let record =
            |subject: &str, kind: RunKind| RunRecord::new(subject, kind, log(), Vec::new());
        let base = record("T1", RunKind::Golden).digest();
        assert_ne!(base, record("T2", RunKind::Golden).digest());
        assert_ne!(base, record("T1", RunKind::Faulty).digest());

        let scheduled = RunRecord::new(
            "T1",
            RunKind::Golden,
            log(),
            vec![ScheduledFault {
                fault: crate::PaperFault::Delay25ms,
                window: InjectionWindow::new(
                    SimTime::from_secs(10),
                    SimDuration::from_secs(10),
                    crate::PaperFault::Delay25ms.config(),
                ),
            }],
        );
        assert_ne!(base, scheduled.digest());
    }

    #[test]
    fn netem_config_digest_distinguishes_paper_faults() {
        let digests: Vec<u64> = crate::PaperFault::ALL
            .iter()
            .map(|f| f.config().digest())
            .collect();
        let mut unique = digests.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            unique.len(),
            digests.len(),
            "fault configs must not collide"
        );
    }

    #[test]
    fn option_framing_is_unambiguous() {
        // None followed by Some must not alias Some followed by None.
        let a = {
            let mut h = StableHasher::new();
            Option::<LossConfig>::None.digest_into(&mut h);
            Some(LossConfig::random(rdsim_units::Ratio::new(0.02))).digest_into(&mut h);
            h.finish()
        };
        let b = {
            let mut h = StableHasher::new();
            Some(LossConfig::random(rdsim_units::Ratio::new(0.02))).digest_into(&mut h);
            Option::<LossConfig>::None.digest_into(&mut h);
            h.finish()
        };
        assert_ne!(a, b);
    }
}
