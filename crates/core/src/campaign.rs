//! The test protocol (§V.E): training → golden run → faulty run, with
//! randomised fault schedules at points of interest.

use crate::{PaperFault, RunLog};
use rdsim_math::RngStream;
use rdsim_netem::InjectionWindow;
use rdsim_units::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which run of the protocol a record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RunKind {
    /// Free driving in an empty town (3–5 minutes) to get familiar with
    /// the station.
    Training,
    /// The baseline run with no faults injected ("NFI").
    Golden,
    /// The run with faults injected at points of interest ("FI").
    Faulty,
}

impl fmt::Display for RunKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RunKind::Training => "training",
            RunKind::Golden => "golden (NFI)",
            RunKind::Faulty => "faulty (FI)",
        })
    }
}

/// A fault chosen for one point of interest, with its injection window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// Which of the paper's five faults was drawn.
    pub fault: PaperFault,
    /// When it is active.
    pub window: InjectionWindow,
}

/// Draws a random fault for each point of interest, as the paper does:
/// "the fault injection was done randomly … if a 5 ms delay was injected
/// for one test subject, a 5 % packet loss might have been injected in the
/// same scenario for another subject."
///
/// `points` are `(start, duration)` pairs; windows must not overlap
/// (callers build them from disjoint scenario situations).
///
/// # Panics
///
/// Panics if two points overlap.
pub fn random_schedule(
    rng: &mut RngStream,
    points: &[(SimTime, SimDuration)],
) -> Vec<ScheduledFault> {
    let mut schedule: Vec<ScheduledFault> = Vec::with_capacity(points.len());
    for &(start, duration) in points {
        let fault = *rng.choose(&PaperFault::ALL);
        let window = InjectionWindow::new(start, duration, fault.config());
        assert!(
            schedule.iter().all(|s| !s.window.overlaps(&window)),
            "fault points overlap at {start}"
        );
        schedule.push(ScheduledFault { fault, window });
    }
    schedule.sort_by_key(|s| s.window.start);
    schedule
}

/// One completed run of the protocol, as analysed by the tables.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// The subject identifier ("T1" … "T12").
    pub subject: String,
    /// Which run this is. `None` only for the default value.
    pub kind: Option<RunKind>,
    /// The recorded data.
    pub log: RunLog,
    /// The fault schedule that was applied (empty for golden runs).
    pub schedule: Vec<ScheduledFault>,
}

impl RunRecord {
    /// Creates a record.
    pub fn new(
        subject: impl Into<String>,
        kind: RunKind,
        log: RunLog,
        schedule: Vec<ScheduledFault>,
    ) -> Self {
        RunRecord {
            subject: subject.into(),
            kind: Some(kind),
            log,
            schedule,
        }
    }

    /// How many times `fault` was injected (a Table II cell).
    pub fn fault_count(&self, fault: PaperFault) -> usize {
        self.schedule.iter().filter(|s| s.fault == fault).count()
    }

    /// Total injections (the Table II row total).
    pub fn total_faults(&self) -> usize {
        self.schedule.len()
    }

    /// The injection windows of a given fault, for windowed metrics.
    pub fn fault_windows(&self, fault: PaperFault) -> Vec<InjectionWindow> {
        self.schedule
            .iter()
            .filter(|s| s.fault == fault)
            .map(|s| s.window)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(n: usize) -> Vec<(SimTime, SimDuration)> {
        (0..n)
            .map(|i| {
                (
                    SimTime::from_secs(10 + 30 * i as u64),
                    SimDuration::from_secs(10),
                )
            })
            .collect()
    }

    #[test]
    fn schedule_covers_every_point() {
        let mut rng = RngStream::from_seed(1).substream("sched");
        let sched = random_schedule(&mut rng, &points(12));
        assert_eq!(sched.len(), 12);
        // Sorted and non-overlapping.
        for w in sched.windows(2) {
            assert!(w[0].window.end() <= w[1].window.start);
        }
    }

    #[test]
    fn schedule_uses_varied_faults() {
        let mut rng = RngStream::from_seed(2).substream("sched");
        let sched = random_schedule(&mut rng, &points(40));
        let distinct: std::collections::HashSet<PaperFault> =
            sched.iter().map(|s| s.fault).collect();
        assert!(distinct.len() >= 4, "40 draws should hit ≥4 of 5 faults");
    }

    #[test]
    fn schedule_is_deterministic_per_stream() {
        let draw = || {
            let mut rng = RngStream::from_seed(3).substream("subject-T5");
            random_schedule(&mut rng, &points(10))
                .iter()
                .map(|s| s.fault)
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_points_panic() {
        let mut rng = RngStream::from_seed(4).substream("sched");
        let pts = vec![
            (SimTime::from_secs(10), SimDuration::from_secs(30)),
            (SimTime::from_secs(20), SimDuration::from_secs(30)),
        ];
        let _ = random_schedule(&mut rng, &pts);
    }

    #[test]
    fn record_counting() {
        let mut rng = RngStream::from_seed(5).substream("sched");
        let sched = random_schedule(&mut rng, &points(20));
        let rec = RunRecord::new("T5", RunKind::Faulty, RunLog::new(), sched);
        let total: usize = PaperFault::ALL.iter().map(|&f| rec.fault_count(f)).sum();
        assert_eq!(total, rec.total_faults());
        assert_eq!(rec.total_faults(), 20);
        for f in PaperFault::ALL {
            assert_eq!(rec.fault_windows(f).len(), rec.fault_count(f));
        }
        assert_eq!(rec.subject, "T5");
        assert_eq!(rec.kind, Some(RunKind::Faulty));
    }

    #[test]
    fn run_kind_display() {
        assert_eq!(format!("{}", RunKind::Golden), "golden (NFI)");
        assert_eq!(format!("{}", RunKind::Faulty), "faulty (FI)");
        assert_eq!(format!("{}", RunKind::Training), "training");
    }
}
