//! The paper's methodology as a library: a Remote Driving System (RDS)
//! architecture plus a human-in-the-loop fault-injection test engine.
//!
//! An RDS, following the paper's §III.A (and the 5GAA reference
//! architecture it cites), has four subsystems:
//!
//! * **vehicle subsystem** — here the CARLA-substitute
//!   [`rdsim_simulator::SimulatorServer`];
//! * **operator subsystem** — the driving station plus the (simulated)
//!   human driver, abstracted as the [`OperatorSubsystem`] trait so driver
//!   models, scripted operators and replay operators are interchangeable;
//! * **communication network subsystem** — a
//!   [`rdsim_netem::DuplexLink`] carrying video frames one way and driving
//!   commands the other, with a [`rdsim_netem::FaultInjector`] emulating
//!   NETEM on the loopback path (bidirectional faults, as in the paper);
//! * **infrastructure subsystem** (optional) — roadside sensing that
//!   augments the operator's view ([`InfrastructureSubsystem`]).
//!
//! [`RdsSession`] wires the four together in simulated time and records a
//! [`RunLog`] with exactly the paper's §V.F logging schema. [`fault`]
//! provides the paper's fault catalog, and [`campaign`] the
//! training/golden/faulty test protocol with randomised fault schedules.
//!
//! # Examples
//!
//! ```
//! use rdsim_core::{RdsSession, RdsSessionConfig, ScriptedOperator};
//! use rdsim_roadnet::town05;
//! use rdsim_simulator::World;
//! use rdsim_units::SimDuration;
//! use rdsim_vehicle::{ControlInput, VehicleSpec};
//!
//! let mut world = World::new(town05(), 1);
//! world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
//! let mut session = RdsSession::new(world, RdsSessionConfig::default(), 1);
//! let mut operator = ScriptedOperator::constant(ControlInput::new(0.4, 0.0, 0.0));
//! session.run(&mut operator, SimDuration::from_secs(5));
//! let log = session.into_log();
//! assert!(!log.ego_samples().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod campaign;
pub mod digest;
pub mod fault;
mod infrastructure;
pub mod pipeline;
mod protocol;
mod runlog;
pub mod safety;
mod session;
pub mod soa;
mod station;

pub use batch::{FixedRun, SessionBatch, SessionController};
pub use campaign::{random_schedule, RunKind, RunRecord, ScheduledFault};
pub use digest::Digestible;
pub use fault::{FaultKind, FaultSpec, PaperFault};
pub use infrastructure::{InfrastructureSubsystem, RoadsideUnit};
pub use pipeline::{Stage, StageContext, StepScratch};
pub use protocol::{
    decode_command, encode_command, encode_command_into, encode_command_pooled, CommandCodecError,
    COMMAND_PACKET_BYTES,
};
pub use runlog::{EgoSample, IncidentKind, IncidentMark, LeadObservation, OtherSample, RunLog};
pub use session::{RdsSession, RdsSessionConfig, SessionStats};
pub use soa::{BatchCtx, OperatorProvider, SoaLanes};
pub use station::{
    OperatorHotState, OperatorSubsystem, ReceivedFrame, ScriptedOperator, StationSpec,
};
