//! Structure-of-arrays state for the batch engine.
//!
//! A [`crate::SessionBatch`] steps N independent sessions per tick. Doing
//! that session-major (run all ten stages of session 0, then session 1, …)
//! touches each stage's code and data N times with everything else in
//! between; doing it *stage-major* (run stage 0 for all N, then stage 1
//! for all N, …) keeps one stage's code and working set hot while it
//! sweeps a dense slice of per-slot state. This module owns that per-slot
//! state:
//!
//! * [`SoaLanes`] — parallel columnar arrays keyed by batch slot: the
//!   per-tick clock, fault-window attribution and next-edge deadlines,
//!   qdisc next-release heads, and mirrors of the hot vehicle/operator
//!   scalars. Deadline columns are *authoritative caches* (they let a
//!   stage skip work that provably cannot happen yet, e.g. an uplink with
//!   nothing queued and nothing due); the kinematic/operator columns are
//!   *gather-only mirrors* (the session's own subsystems keep the
//!   authoritative state, the lanes expose it as dense arrays).
//! * [`BatchCtx`] — what a [`crate::Stage`]'s `step_batch` sees: the
//!   sessions, the slot list for this sweep, the lanes, and an
//!   [`OperatorProvider`] resolving each slot's operator without
//!   allocating.
//!
//! The scatter/gather boundary is deliberately narrow: stages write run
//! logs, traces and counters through exactly the same code as the serial
//! path, so digests, telemetry and forensics cannot see the layout. The
//! batched-vs-serial harnesses pin this bit for bit.

use crate::pipeline::StageContext;
use crate::{OperatorSubsystem, RdsSession};

/// Resolves the operator subsystem for a batch slot.
///
/// `SessionBatch` implements this over its controller array so the
/// stage-major loop can reach any slot's operator by index without
/// collecting `&mut dyn` references up front (which would allocate).
pub trait OperatorProvider {
    /// The operator driving the session in `slot`.
    fn operator_mut(&mut self, slot: usize) -> &mut dyn OperatorSubsystem;
}

/// Parallel columnar arrays of per-session hot state, keyed by batch
/// slot. Slots are assigned at [`crate::SessionBatch::push`] time and
/// never reused; columns grow with the batch and keep retired slots'
/// last values (nothing reads them again).
#[derive(Debug, Default)]
pub struct SoaLanes {
    /// Post-physics tick clock, µs (mirror of `StepScratch::now`).
    pub(crate) now_us: Vec<u64>,
    /// Cached fault-window attribution for the tick.
    pub(crate) fault_in_window: Vec<bool>,
    /// Next simulated time (µs) the fault injector can change link
    /// state; `u64::MAX` = no transition pending. Lets the fault stage
    /// skip the per-tick window scan between edges.
    pub(crate) fault_next_edge_us: Vec<u64>,
    /// Injector revision the cached edge was computed at; `u64::MAX`
    /// marks "not cached yet".
    pub(crate) fault_epoch: Vec<u64>,
    /// Uplink qdisc's next-release head, µs (`u64::MAX` = queue empty).
    /// Lets the uplink stage skip the link transfer entirely on ticks
    /// with nothing to send and nothing due.
    pub(crate) up_next_release_us: Vec<u64>,
    /// Downlink qdisc's next-release head, µs (maintained for symmetry
    /// and diagnostics; the downlink sends every tick so it cannot skip).
    pub(crate) down_next_release_us: Vec<u64>,
    /// Ego kinematic mirrors, scattered after the vehicle stage.
    pub(crate) ego_x: Vec<f64>,
    pub(crate) ego_y: Vec<f64>,
    pub(crate) ego_heading: Vec<f64>,
    pub(crate) ego_speed: Vec<f64>,
    pub(crate) ego_accel: Vec<f64>,
    pub(crate) ego_steer: Vec<f64>,
    /// Operator hot-state mirrors, gathered after the operator stage
    /// from [`OperatorSubsystem::hot_state`] (left untouched for
    /// operators that expose none).
    pub(crate) op_wheel: Vec<f64>,
    pub(crate) op_steer_target: Vec<f64>,
    pub(crate) op_next_update_us: Vec<u64>,
}

impl SoaLanes {
    /// Grows every column to cover `n` slots.
    pub(crate) fn ensure_slots(&mut self, n: usize) {
        self.now_us.resize(n, 0);
        self.fault_in_window.resize(n, false);
        self.fault_next_edge_us.resize(n, 0);
        self.fault_epoch.resize(n, u64::MAX);
        self.up_next_release_us.resize(n, 0);
        self.down_next_release_us.resize(n, 0);
        self.ego_x.resize(n, 0.0);
        self.ego_y.resize(n, 0.0);
        self.ego_heading.resize(n, 0.0);
        self.ego_speed.resize(n, 0.0);
        self.ego_accel.resize(n, 0.0);
        self.ego_steer.resize(n, 0.0);
        self.op_wheel.resize(n, 0.0);
        self.op_steer_target.resize(n, 0.0);
        self.op_next_update_us.resize(n, 0);
    }

    /// Number of slots the lanes cover.
    pub fn slots(&self) -> usize {
        self.now_us.len()
    }

    /// Post-physics tick clock per slot, µs.
    pub fn now_us(&self) -> &[u64] {
        &self.now_us
    }

    /// Whether a fault rule was active at each slot's last tick.
    pub fn fault_in_window(&self) -> &[bool] {
        &self.fault_in_window
    }

    /// Ego longitudinal speed mirror, m/s.
    pub fn ego_speed(&self) -> &[f64] {
        &self.ego_speed
    }

    /// Ego position mirrors, metres.
    pub fn ego_xy(&self) -> (&[f64], &[f64]) {
        (&self.ego_x, &self.ego_y)
    }

    /// Operator wheel-angle mirror (slots whose operator exposes no
    /// [`crate::OperatorHotState`] stay at their default).
    pub fn op_wheel(&self) -> &[f64] {
        &self.op_wheel
    }

    /// Uplink next-release heads, µs (`u64::MAX` = idle).
    pub fn up_next_release_us(&self) -> &[u64] {
        &self.up_next_release_us
    }
}

/// Everything a batched stage sweep may touch: the session array, the
/// slots to advance (already filtered to live, batch-eligible sessions
/// whose stage at the current position is the builtin), the operator
/// provider and the columnar lanes.
pub struct BatchCtx<'a> {
    pub(crate) sessions: &'a mut [RdsSession],
    pub(crate) ops: &'a mut dyn OperatorProvider,
    pub(crate) slots: &'a [usize],
    pub(crate) lanes: &'a mut SoaLanes,
}

impl BatchCtx<'_> {
    /// Number of slots in this sweep.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The batch slot at sweep position `k`.
    pub fn slot(&self, k: usize) -> usize {
        self.slots[k]
    }

    /// The columnar lanes.
    pub fn lanes(&self) -> &SoaLanes {
        &*self.lanes
    }

    /// Runs `f` with the per-session [`StageContext`] of sweep position
    /// `k` — exactly the context the serial path would build, so
    /// `batch.with_slot(k, |ctx| self.advance(ctx))` is the
    /// bit-identical per-slot fallback.
    pub fn with_slot<R>(&mut self, k: usize, f: impl FnOnce(&mut StageContext<'_>) -> R) -> R {
        let slot = self.slots[k];
        let session = &mut self.sessions[slot];
        let mut ctx = StageContext {
            core: &mut session.core,
            operator: self.ops.operator_mut(slot),
            scratch: &mut session.scratch,
        };
        f(&mut ctx)
    }
}
