//! The fault model (§V.C): type, value, and the paper's fault catalog.

use rdsim_netem::NetemConfig;
use rdsim_units::{Millis, Ratio};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind and magnitude of a communication fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Fixed one-way delay.
    Delay(Millis),
    /// Independent random packet loss.
    PacketLoss(Ratio),
    /// Single-bit payload corruption (a discarded candidate in the paper:
    /// "did not show any clear visual or operational effect").
    Corruption(Ratio),
    /// Packet duplication (the other discarded candidate).
    Duplication(Ratio),
}

impl FaultKind {
    /// The NETEM rule implementing this fault.
    pub fn config(&self) -> NetemConfig {
        match *self {
            FaultKind::Delay(ms) => NetemConfig::default().with_delay(ms),
            FaultKind::PacketLoss(p) => NetemConfig::default().with_loss(p),
            FaultKind::Corruption(p) => NetemConfig::default().with_corrupt(p),
            FaultKind::Duplication(p) => NetemConfig::default().with_duplicate(p),
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultKind::Delay(ms) => write!(f, "delay {}ms", ms.get()),
            FaultKind::PacketLoss(p) => write!(f, "loss {}%", p.to_percent()),
            FaultKind::Corruption(p) => write!(f, "corrupt {}%", p.to_percent()),
            FaultKind::Duplication(p) => write!(f, "duplicate {}%", p.to_percent()),
        }
    }
}

/// A named fault: what the injection log and the result tables call it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Table label, e.g. `"5ms"` or `"2%"`.
    pub label: String,
    /// Kind and magnitude.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// Creates a named fault.
    pub fn new(label: impl Into<String>, kind: FaultKind) -> Self {
        FaultSpec {
            label: label.into(),
            kind,
        }
    }
}

/// The five faults the paper selected "based on initial testing, with the
/// purpose of exploring the limits of manoeuvrability" (§V.C), as a closed
/// enum so tables can index columns by fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PaperFault {
    /// 5 ms delay.
    Delay5ms,
    /// 25 ms delay.
    Delay25ms,
    /// 50 ms delay.
    Delay50ms,
    /// 2 % packet loss.
    Loss2Pct,
    /// 5 % packet loss.
    Loss5Pct,
}

impl PaperFault {
    /// All five, in the tables' column order.
    pub const ALL: [PaperFault; 5] = [
        PaperFault::Delay5ms,
        PaperFault::Delay25ms,
        PaperFault::Delay50ms,
        PaperFault::Loss2Pct,
        PaperFault::Loss5Pct,
    ];

    /// The fault's kind and magnitude.
    pub fn kind(self) -> FaultKind {
        match self {
            PaperFault::Delay5ms => FaultKind::Delay(Millis::new(5.0)),
            PaperFault::Delay25ms => FaultKind::Delay(Millis::new(25.0)),
            PaperFault::Delay50ms => FaultKind::Delay(Millis::new(50.0)),
            PaperFault::Loss2Pct => FaultKind::PacketLoss(Ratio::from_percent(2.0)),
            PaperFault::Loss5Pct => FaultKind::PacketLoss(Ratio::from_percent(5.0)),
        }
    }

    /// The NETEM rule implementing the fault.
    pub fn config(self) -> NetemConfig {
        self.kind().config()
    }

    /// `true` for the delay family.
    pub fn is_delay(self) -> bool {
        matches!(
            self,
            PaperFault::Delay5ms | PaperFault::Delay25ms | PaperFault::Delay50ms
        )
    }

    /// `true` for the packet-loss family.
    pub fn is_loss(self) -> bool {
        !self.is_delay()
    }

    /// The table column label ("5ms", "25ms", "50ms", "2%", "5%").
    pub fn label(self) -> &'static str {
        match self {
            PaperFault::Delay5ms => "5ms",
            PaperFault::Delay25ms => "25ms",
            PaperFault::Delay50ms => "50ms",
            PaperFault::Loss2Pct => "2%",
            PaperFault::Loss5Pct => "5%",
        }
    }

    /// Identifies the paper fault matching a NETEM rule, if any — used to
    /// attribute injector-log entries back to table columns.
    pub fn from_config(config: &NetemConfig) -> Option<PaperFault> {
        PaperFault::ALL.into_iter().find(|f| f.config() == *config)
    }

    /// The discarded candidate faults (corruption and duplication), kept
    /// testable so the discard decision itself can be reproduced.
    pub fn discarded_candidates() -> Vec<FaultSpec> {
        vec![
            FaultSpec::new(
                "corrupt-0.5%",
                FaultKind::Corruption(Ratio::from_percent(0.5)),
            ),
            FaultSpec::new("dup-1%", FaultKind::Duplication(Ratio::from_percent(1.0))),
        ]
    }
}

impl fmt::Display for PaperFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdsim_netem::LossConfig;

    #[test]
    fn catalog_order_matches_tables() {
        let labels: Vec<&str> = PaperFault::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(labels, vec!["5ms", "25ms", "50ms", "2%", "5%"]);
    }

    #[test]
    fn families() {
        assert!(PaperFault::Delay5ms.is_delay());
        assert!(PaperFault::Delay50ms.is_delay());
        assert!(PaperFault::Loss2Pct.is_loss());
        assert!(!PaperFault::Loss5Pct.is_delay());
    }

    #[test]
    fn configs_are_correct_netem_rules() {
        let c = PaperFault::Delay50ms.config();
        assert_eq!(c.delay.unwrap().base, Millis::new(50.0));
        assert!(c.loss.is_none());
        let c = PaperFault::Loss5Pct.config();
        match c.loss.unwrap() {
            LossConfig::Random { probability, .. } => {
                assert!((probability.to_percent() - 5.0).abs() < 1e-12)
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(c.delay.is_none());
    }

    #[test]
    fn from_config_roundtrip() {
        for f in PaperFault::ALL {
            assert_eq!(PaperFault::from_config(&f.config()), Some(f));
        }
        assert_eq!(PaperFault::from_config(&NetemConfig::passthrough()), None);
    }

    #[test]
    fn kind_display() {
        assert_eq!(
            format!("{}", FaultKind::Delay(Millis::new(25.0))),
            "delay 25ms"
        );
        assert_eq!(
            format!("{}", FaultKind::PacketLoss(Ratio::from_percent(5.0))),
            "loss 5%"
        );
        assert_eq!(format!("{}", PaperFault::Loss2Pct), "2%");
    }

    #[test]
    fn discarded_candidates_produce_rules() {
        let cands = PaperFault::discarded_candidates();
        assert_eq!(cands.len(), 2);
        assert!(cands[0].kind.config().corrupt.is_some());
        assert!(cands[1].kind.config().duplicate.is_some());
    }
}
