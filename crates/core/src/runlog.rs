//! The run log: the paper's §V.F data-logging schema.

use rdsim_math::Sample;
use rdsim_math::Vec2;
use rdsim_netem::InjectionEvent;
use rdsim_simulator::{ActorId, CollisionEvent, LaneInvasionEvent};
use rdsim_units::{Meters, MetersPerSecond, MetersPerSecond2, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The ego's view of its lead vehicle at a sample instant, captured so TTC
/// can be computed offline exactly as the paper does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeadObservation {
    /// The lead vehicle's actor id.
    pub actor: ActorId,
    /// Along-lane gap between vehicle centres.
    pub gap: Meters,
    /// Closing speed (ego speed − lead speed; positive = approaching).
    pub closing_speed: MetersPerSecond,
}

/// One ego-vehicle log sample: "timestamp, x, y, z, vx, vy, vz, ax, ay,
/// az, throttle, steer, brake" (z components identically zero in 2-D).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EgoSample {
    /// Sample time.
    pub t: SimTime,
    /// Camera frame id current at the sample.
    pub frame: u64,
    /// World position.
    pub position: Vec2,
    /// World-frame velocity.
    pub velocity: Vec2,
    /// Longitudinal speed.
    pub speed: MetersPerSecond,
    /// Longitudinal acceleration.
    pub accel: MetersPerSecond2,
    /// Applied throttle, `0..=1`.
    pub throttle: f64,
    /// Applied steering, `-1..=1`.
    pub steer: f64,
    /// Applied brake, `0..=1`.
    pub brake: f64,
    /// Lead-vehicle observation, when one is within the logging horizon.
    pub lead: Option<LeadObservation>,
}

/// One other-vehicle sample: "actor, timestamp, distance from ego, …".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OtherSample {
    /// The observed actor.
    pub actor: ActorId,
    /// Sample time.
    pub t: SimTime,
    /// Camera frame id current at the sample.
    pub frame: u64,
    /// Straight-line distance from the ego.
    pub distance_from_ego: Meters,
    /// World position.
    pub position: Vec2,
    /// Longitudinal speed.
    pub speed: MetersPerSecond,
}

/// What kind of safety incident an [`IncidentMark`] flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IncidentKind {
    /// The ego collided with another actor.
    Collision,
    /// Time-to-collision against the lead vehicle dropped below the 6 s
    /// criticality threshold (entry edge only; one mark per excursion).
    TtcBreach,
    /// A fault-injection rule was added or deleted.
    FaultEdge,
}

impl IncidentKind {
    /// Short lower-case label, stable for file names and trace output.
    pub fn label(self) -> &'static str {
        match self {
            IncidentKind::Collision => "collision",
            IncidentKind::TtcBreach => "ttc-breach",
            IncidentKind::FaultEdge => "fault-edge",
        }
    }
}

/// A timestamped safety-incident marker. The session emits one per
/// collision, per TTC-threshold breach entry, and per fault-window edge;
/// incident dumps window the flight recorder around these instants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncidentMark {
    /// What happened.
    pub kind: IncidentKind,
    /// When it happened.
    pub time: SimTime,
}

/// A complete run recording (§V.F): collisions, lane invasions, ego and
/// other-vehicle trajectories, the fault-injection event log, and the
/// session's incident marks.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunLog {
    ego: Vec<EgoSample>,
    others: Vec<OtherSample>,
    collisions: Vec<CollisionEvent>,
    lane_invasions: Vec<LaneInvasionEvent>,
    faults: Vec<InjectionEvent>,
    #[serde(default)]
    incidents: Vec<IncidentMark>,
    duration: SimDuration,
}

impl RunLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        RunLog::default()
    }

    /// Assembles a log from recorded parts — for importing externally
    /// recorded runs (or building fixtures in downstream tests).
    pub fn from_parts(
        ego: Vec<EgoSample>,
        others: Vec<OtherSample>,
        collisions: Vec<CollisionEvent>,
        lane_invasions: Vec<LaneInvasionEvent>,
        faults: Vec<InjectionEvent>,
        duration: SimDuration,
    ) -> Self {
        RunLog {
            ego,
            others,
            collisions,
            lane_invasions,
            faults,
            incidents: Vec::new(),
            duration,
        }
    }

    /// Reserves room for `ego` more ego samples and `others` more
    /// other-vehicle samples, so a run of known length logs without
    /// growing mid-step.
    pub fn reserve_samples(&mut self, ego: usize, others: usize) {
        self.ego.reserve(ego);
        self.others.reserve(others);
    }

    pub(crate) fn push_ego(&mut self, sample: EgoSample) {
        self.ego.push(sample);
    }

    pub(crate) fn push_other(&mut self, sample: OtherSample) {
        self.others.push(sample);
    }

    pub(crate) fn extend_collisions(&mut self, events: impl IntoIterator<Item = CollisionEvent>) {
        self.collisions.extend(events);
    }

    pub(crate) fn extend_lane_invasions(
        &mut self,
        events: impl IntoIterator<Item = LaneInvasionEvent>,
    ) {
        self.lane_invasions.extend(events);
    }

    pub(crate) fn set_faults(&mut self, faults: Vec<InjectionEvent>) {
        self.faults = faults;
    }

    pub(crate) fn set_incidents(&mut self, incidents: Vec<IncidentMark>) {
        self.incidents = incidents;
    }

    pub(crate) fn set_duration(&mut self, duration: SimDuration) {
        self.duration = duration;
    }

    /// Ego trajectory samples in time order.
    pub fn ego_samples(&self) -> &[EgoSample] {
        &self.ego
    }

    /// Other-vehicle samples in time order.
    pub fn other_samples(&self) -> &[OtherSample] {
        &self.others
    }

    /// Collision events.
    pub fn collisions(&self) -> &[CollisionEvent] {
        &self.collisions
    }

    /// Lane-invasion events.
    pub fn lane_invasions(&self) -> &[LaneInvasionEvent] {
        &self.lane_invasions
    }

    /// Fault-injection events (timestamp, rule, added/deleted).
    pub fn fault_events(&self) -> &[InjectionEvent] {
        &self.faults
    }

    /// Safety-incident marks (collisions, TTC breaches, fault edges) in
    /// emission order.
    pub fn incidents(&self) -> &[IncidentMark] {
        &self.incidents
    }

    /// Total run duration.
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// `true` if at least one collision was recorded.
    pub fn collided(&self) -> bool {
        !self.collisions.is_empty()
    }

    /// The steering time series (t seconds, applied steer), the input to
    /// the SRR metric.
    pub fn steering_series(&self) -> Vec<Sample> {
        self.ego
            .iter()
            .map(|s| Sample::new(s.t.as_secs_f64(), s.steer))
            .collect()
    }

    /// The speed time series (t seconds, m/s).
    pub fn speed_series(&self) -> Vec<Sample> {
        self.ego
            .iter()
            .map(|s| Sample::new(s.t.as_secs_f64(), s.speed.get()))
            .collect()
    }

    /// The throttle and brake series (driving-profile analysis, §VI.E).
    pub fn pedal_series(&self) -> (Vec<Sample>, Vec<Sample>) {
        let throttle = self
            .ego
            .iter()
            .map(|s| Sample::new(s.t.as_secs_f64(), s.throttle))
            .collect();
        let brake = self
            .ego
            .iter()
            .map(|s| Sample::new(s.t.as_secs_f64(), s.brake))
            .collect();
        (throttle, brake)
    }

    /// Drops all steering values, simulating the recording failures the
    /// paper reports for T3/T8/T10/T12 ("some data were not recorded
    /// properly due to technical issues").
    pub fn redact_steering(&mut self) {
        for s in &mut self.ego {
            s.steer = f64::NAN;
        }
    }

    /// Drops lead-vehicle observations (the missing dynamic-vehicle
    /// velocity of T1–T4, which voids TTC analysis).
    pub fn redact_lead_observations(&mut self) {
        for s in &mut self.ego {
            s.lead = None;
        }
        self.others.clear();
    }

    /// `true` if steering data survived recording.
    pub fn has_steering_data(&self) -> bool {
        self.ego.iter().any(|s| s.steer.is_finite())
    }

    /// `true` if lead-vehicle observations survived recording.
    pub fn has_lead_data(&self) -> bool {
        self.ego.iter().any(|s| s.lead.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t_ms: u64, steer: f64) -> EgoSample {
        EgoSample {
            t: SimTime::from_millis(t_ms),
            frame: t_ms / 40,
            position: Vec2::new(t_ms as f64, 0.0),
            velocity: Vec2::new(10.0, 0.0),
            speed: MetersPerSecond::new(10.0),
            accel: MetersPerSecond2::ZERO,
            throttle: 0.5,
            steer,
            brake: 0.0,
            lead: Some(LeadObservation {
                actor: ActorId(1),
                gap: Meters::new(30.0),
                closing_speed: MetersPerSecond::new(1.0),
            }),
        }
    }

    #[test]
    fn series_extraction() {
        let mut log = RunLog::new();
        log.push_ego(sample(0, 0.1));
        log.push_ego(sample(20, -0.2));
        log.set_duration(SimDuration::from_millis(40));
        let steer = log.steering_series();
        assert_eq!(steer.len(), 2);
        assert_eq!(steer[1].value, -0.2);
        assert!((steer[1].t - 0.02).abs() < 1e-12);
        let speed = log.speed_series();
        assert_eq!(speed[0].value, 10.0);
        let (thr, brk) = log.pedal_series();
        assert_eq!(thr[0].value, 0.5);
        assert_eq!(brk[0].value, 0.0);
        assert_eq!(log.duration(), SimDuration::from_millis(40));
    }

    #[test]
    fn redactions_mirror_paper_data_losses() {
        let mut log = RunLog::new();
        log.push_ego(sample(0, 0.1));
        log.push_other(OtherSample {
            actor: ActorId(1),
            t: SimTime::ZERO,
            frame: 0,
            distance_from_ego: Meters::new(30.0),
            position: Vec2::new(30.0, 0.0),
            speed: MetersPerSecond::new(9.0),
        });
        assert!(log.has_steering_data());
        assert!(log.has_lead_data());
        log.redact_steering();
        assert!(!log.has_steering_data());
        assert!(log.has_lead_data());
        log.redact_lead_observations();
        assert!(!log.has_lead_data());
        assert!(log.other_samples().is_empty());
    }

    #[test]
    fn collided_flag() {
        let mut log = RunLog::new();
        assert!(!log.collided());
        log.extend_collisions([CollisionEvent {
            time: SimTime::ZERO,
            frame_id: 0,
            ego: ActorId(0),
            other: ActorId(1),
            relative_speed: MetersPerSecond::new(5.0),
        }]);
        assert!(log.collided());
        assert_eq!(log.collisions().len(), 1);
    }
}
