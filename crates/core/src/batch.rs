//! Lockstep batching of independent sessions on one worker.
//!
//! The ROADMAP's north star is stepping millions of scenario runs per
//! campaign. Per-run overheads — scheduling a worker, warming telemetry
//! registries and trace rings, cache-cold stage code — can't be amortized
//! when every run occupies a worker from start to finish. A
//! [`SessionBatch`] steps N *independent* sessions in lockstep: each tick
//! it advances every live session by one step, so the stage code stays
//! hot in cache across sessions and one worker carries N runs.
//!
//! Sessions in a batch share nothing (each owns its world, links, RNG
//! streams and driver), so lockstep interleaving is bit-for-bit
//! equivalent to running them serially — the parallel-equivalence suite
//! pins this. The batch is struct-of-arrays over the per-session bits the
//! scheduler needs (liveness flags next to each other, controllers next
//! to each other) so the per-tick scheduling scan touches dense memory.

use crate::{OperatorSubsystem, RdsSession};

/// Drives one session inside a [`SessionBatch`]: decides before each step
/// whether the session should continue, and supplies the operator that
/// steps it.
///
/// This is the batched counterpart of a hand-written `while … {
/// session.step(&mut op) }` loop: the loop condition becomes
/// [`pre_step`](Self::pre_step), the loop body's operator becomes
/// [`operator_mut`](Self::operator_mut).
pub trait SessionController {
    /// Called before every step with the session about to be stepped.
    /// Returning `false` retires the session from the batch (its
    /// controller's state is preserved for [`SessionBatch::finish`]).
    fn pre_step(&mut self, session: &mut RdsSession) -> bool;

    /// The operator subsystem that steps this controller's session.
    fn operator_mut(&mut self) -> &mut dyn OperatorSubsystem;
}

impl<T: SessionController + ?Sized> SessionController for Box<T> {
    fn pre_step(&mut self, session: &mut RdsSession) -> bool {
        (**self).pre_step(session)
    }

    fn operator_mut(&mut self) -> &mut dyn OperatorSubsystem {
        (**self).operator_mut()
    }
}

/// The simplest controller: run an operator for a fixed number of steps.
///
/// `FixedRun::new(op, duration.div_steps(dt))` batched is equivalent to
/// `session.run(&mut op, duration)` serial.
#[derive(Debug)]
pub struct FixedRun<O> {
    operator: O,
    steps_left: u64,
}

impl<O: OperatorSubsystem> FixedRun<O> {
    /// A controller stepping `steps` times with `operator`.
    pub fn new(operator: O, steps: u64) -> Self {
        FixedRun {
            operator,
            steps_left: steps,
        }
    }

    /// The wrapped operator (e.g. to read its counters after the run).
    pub fn operator(&self) -> &O {
        &self.operator
    }

    /// Consumes the controller, returning the operator.
    pub fn into_operator(self) -> O {
        self.operator
    }
}

impl<O: OperatorSubsystem> SessionController for FixedRun<O> {
    fn pre_step(&mut self, _session: &mut RdsSession) -> bool {
        if self.steps_left == 0 {
            return false;
        }
        self.steps_left -= 1;
        true
    }

    fn operator_mut(&mut self) -> &mut dyn OperatorSubsystem {
        &mut self.operator
    }
}

/// Steps N independent sessions in lockstep, one tick of every live
/// session per [`step_all`](Self::step_all) call.
///
/// Sessions retire individually (their controller's
/// [`pre_step`](SessionController::pre_step) returns `false`); the batch
/// keeps ticking the remainder until none are live, then
/// [`finish`](Self::finish) hands back every `(session, controller)`
/// pair in insertion order for per-run log extraction.
#[derive(Debug)]
pub struct SessionBatch<C> {
    // Struct-of-arrays: the scheduler scans `live` and `controllers`
    // densely each tick; the big session states sit in their own lane.
    sessions: Vec<RdsSession>,
    controllers: Vec<C>,
    live: Vec<bool>,
    live_count: usize,
}

impl<C: SessionController> SessionBatch<C> {
    /// An empty batch.
    pub fn new() -> Self {
        SessionBatch {
            sessions: Vec::new(),
            controllers: Vec::new(),
            live: Vec::new(),
            live_count: 0,
        }
    }

    /// Adds a session and its controller to the batch.
    pub fn push(&mut self, session: RdsSession, controller: C) {
        self.sessions.push(session);
        self.controllers.push(controller);
        self.live.push(true);
        self.live_count += 1;
    }

    /// Number of sessions in the batch (live or retired).
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the batch holds no sessions at all.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Number of sessions still live.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Advances every live session by one tick. Returns the number of
    /// sessions stepped (0 = the batch is done).
    pub fn step_all(&mut self) -> usize {
        let mut stepped = 0;
        for i in 0..self.sessions.len() {
            if !self.live[i] {
                continue;
            }
            let session = &mut self.sessions[i];
            let controller = &mut self.controllers[i];
            if !controller.pre_step(session) {
                self.live[i] = false;
                self.live_count -= 1;
                continue;
            }
            session.step(controller.operator_mut());
            stepped += 1;
        }
        stepped
    }

    /// Ticks until every session has retired.
    pub fn run_to_completion(&mut self) {
        while self.step_all() > 0 {}
    }

    /// Consumes the batch, returning every `(session, controller)` pair
    /// in insertion order.
    pub fn finish(self) -> Vec<(RdsSession, C)> {
        self.sessions.into_iter().zip(self.controllers).collect()
    }
}

impl<C: SessionController> Default for SessionBatch<C> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Digestible, PaperFault, RdsSessionConfig, ScriptedOperator};
    use rdsim_netem::InjectionWindow;
    use rdsim_roadnet::town05;
    use rdsim_simulator::{CameraConfig, World};
    use rdsim_units::{Hertz, SimDuration, SimTime};
    use rdsim_vehicle::{ControlInput, VehicleSpec};

    fn session(seed: u64) -> RdsSession {
        let mut world = World::new(town05(), seed);
        world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
        let config = RdsSessionConfig {
            camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
            ..RdsSessionConfig::default()
        };
        let mut s = RdsSession::new(world, config, seed);
        s.schedule_fault(InjectionWindow::new(
            SimTime::from_secs(1),
            SimDuration::from_secs(2),
            PaperFault::Loss5Pct.config(),
        ))
        .unwrap();
        s
    }

    fn throttle(seed: u64) -> ScriptedOperator {
        // Distinct per-seed throttle so sessions in a batch diverge.
        ScriptedOperator::constant(ControlInput::new(0.3 + (seed % 3) as f64 * 0.1, 0.0, 0.0))
    }

    #[test]
    fn batched_lockstep_matches_serial_digests() {
        let seeds = [11u64, 97, 1234, 4242];
        let steps = 250; // 5 s at 50 Hz

        // Serial reference: one session at a time, plain run loop.
        let serial: Vec<u64> = seeds
            .iter()
            .map(|&seed| {
                let mut s = session(seed);
                let mut op = throttle(seed);
                for _ in 0..steps {
                    s.step(&mut op);
                }
                s.into_log().digest()
            })
            .collect();

        // Batched: all four in lockstep on one "worker".
        let mut batch = SessionBatch::new();
        for &seed in &seeds {
            batch.push(session(seed), FixedRun::new(throttle(seed), steps));
        }
        batch.run_to_completion();
        assert_eq!(batch.live_count(), 0);
        let batched: Vec<u64> = batch
            .finish()
            .into_iter()
            .map(|(s, _)| s.into_log().digest())
            .collect();

        assert_eq!(serial, batched, "lockstep must be bit-for-bit serial");
        // The runs genuinely differ from one another (distinct seeds).
        assert!(serial.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn sessions_retire_individually() {
        let mut batch = SessionBatch::new();
        batch.push(session(1), FixedRun::new(throttle(1), 10));
        batch.push(session(2), FixedRun::new(throttle(2), 25));
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.live_count(), 2);
        for _ in 0..10 {
            assert_eq!(batch.step_all(), 2);
        }
        // First session is done; only the second still steps.
        assert_eq!(batch.step_all(), 1);
        assert_eq!(batch.live_count(), 1);
        batch.run_to_completion();
        assert_eq!(batch.live_count(), 0);
        assert_eq!(batch.step_all(), 0, "done batches are idle");
        let done = batch.finish();
        assert_eq!(done[0].0.time(), SimTime::from_millis(10 * 20));
        assert_eq!(done[1].0.time(), SimTime::from_millis(25 * 20));
    }

    #[test]
    fn boxed_controllers_work() {
        let mut batch: SessionBatch<Box<dyn SessionController>> = SessionBatch::default();
        assert!(batch.is_empty());
        batch.push(session(3), Box::new(FixedRun::new(throttle(3), 5)));
        batch.run_to_completion();
        let done = batch.finish();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0.time(), SimTime::from_millis(100));
    }
}
