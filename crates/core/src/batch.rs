//! Lockstep batching of independent sessions on one worker.
//!
//! The ROADMAP's north star is stepping millions of scenario runs per
//! campaign. Per-run overheads — scheduling a worker, warming telemetry
//! registries and trace rings, cache-cold stage code — can't be amortized
//! when every run occupies a worker from start to finish. A
//! [`SessionBatch`] steps N *independent* sessions in lockstep: each tick
//! it advances every live session by one step, so the stage code stays
//! hot in cache across sessions and one worker carries N runs.
//!
//! Sessions in a batch share nothing (each owns its world, links, RNG
//! streams and driver), so lockstep interleaving is bit-for-bit
//! equivalent to running them serially — the parallel-equivalence suite
//! pins this.
//!
//! Since the SoA refactor the batch is the owner of the data-oriented
//! engine: it keeps a compact live-slot index (swap-removed on
//! retirement, so the scheduling scan never touches retired sessions),
//! the [`SoaLanes`] columnar arrays of per-slot hot state, and one
//! *canonical* builtin pipeline that it runs **stage-major**: stage 0
//! for every batch-eligible session, then stage 1, and so on — the
//! stage's code and working set stay hot while it sweeps dense columns.
//! Sessions that can't join the sweep (custom stage list shape, live
//! telemetry recorder) step serially through [`RdsSession::step`]
//! exactly as before, and a single position swapped via
//! [`RdsSession::replace_stage`] demotes only that position to the
//! per-session loop ([`crate::Stage::is_default_impl`]). The run-log,
//! trace and counter writes go through the same code on every path, so
//! digests cannot see the layout.

use crate::pipeline::{Stage, StageContext};
use crate::soa::{BatchCtx, OperatorProvider, SoaLanes};
use crate::{OperatorSubsystem, RdsSession};

/// Drives one session inside a [`SessionBatch`]: decides before each step
/// whether the session should continue, and supplies the operator that
/// steps it.
///
/// This is the batched counterpart of a hand-written `while … {
/// session.step(&mut op) }` loop: the loop condition becomes
/// [`pre_step`](Self::pre_step), the loop body's operator becomes
/// [`operator_mut`](Self::operator_mut).
pub trait SessionController {
    /// Called before every step with the session about to be stepped.
    /// Returning `false` retires the session from the batch (its
    /// controller's state is preserved for [`SessionBatch::finish`]).
    fn pre_step(&mut self, session: &mut RdsSession) -> bool;

    /// The operator subsystem that steps this controller's session.
    fn operator_mut(&mut self) -> &mut dyn OperatorSubsystem;
}

impl<T: SessionController + ?Sized> SessionController for Box<T> {
    fn pre_step(&mut self, session: &mut RdsSession) -> bool {
        (**self).pre_step(session)
    }

    fn operator_mut(&mut self) -> &mut dyn OperatorSubsystem {
        (**self).operator_mut()
    }
}

/// The simplest controller: run an operator for a fixed number of steps.
///
/// `FixedRun::new(op, duration.div_steps(dt))` batched is equivalent to
/// `session.run(&mut op, duration)` serial.
#[derive(Debug)]
pub struct FixedRun<O> {
    operator: O,
    steps_left: u64,
}

impl<O: OperatorSubsystem> FixedRun<O> {
    /// A controller stepping `steps` times with `operator`.
    pub fn new(operator: O, steps: u64) -> Self {
        FixedRun {
            operator,
            steps_left: steps,
        }
    }

    /// The wrapped operator (e.g. to read its counters after the run).
    pub fn operator(&self) -> &O {
        &self.operator
    }

    /// Consumes the controller, returning the operator.
    pub fn into_operator(self) -> O {
        self.operator
    }
}

impl<O: OperatorSubsystem> SessionController for FixedRun<O> {
    fn pre_step(&mut self, _session: &mut RdsSession) -> bool {
        if self.steps_left == 0 {
            return false;
        }
        self.steps_left -= 1;
        true
    }

    fn operator_mut(&mut self) -> &mut dyn OperatorSubsystem {
        &mut self.operator
    }
}

/// Steps N independent sessions in lockstep, one tick of every live
/// session per [`step_all`](Self::step_all) call.
///
/// Sessions retire individually (their controller's
/// [`pre_step`](SessionController::pre_step) returns `false`); the batch
/// keeps ticking the remainder until none are live, then
/// [`finish`](Self::finish) hands back every `(session, controller)`
/// pair in insertion order for per-run log extraction.
#[derive(Debug)]
pub struct SessionBatch<C> {
    // Struct-of-arrays: the scheduler scans `live_slots` and
    // `controllers` densely each tick; the big session states sit in
    // their own lane, and the hot per-slot scalars in `lanes`.
    sessions: Vec<RdsSession>,
    controllers: Vec<C>,
    /// Compact index of live batch slots; retirement swap-removes, so
    /// the scan is O(live) instead of O(ever-pushed).
    live_slots: Vec<usize>,
    /// The canonical builtin pipeline the stage-major sweep runs. The
    /// builtins are stateless unit structs, so one shared instance
    /// advancing every eligible session is identical to each session
    /// advancing its own.
    canonical: Vec<Box<dyn Stage>>,
    /// Columnar per-slot hot state (see [`crate::soa`]).
    lanes: SoaLanes,
    // Per-tick partition scratch, reused across ticks.
    soa_slots: Vec<usize>,
    serial_slots: Vec<usize>,
    pos_default: Vec<usize>,
    pos_custom: Vec<usize>,
}

/// Resolves a batch slot's operator through its controller — the
/// [`OperatorProvider`] the stage-major sweep hands to `step_batch`.
struct ControllerOperators<'a, C>(&'a mut [C]);

impl<C: SessionController> OperatorProvider for ControllerOperators<'_, C> {
    fn operator_mut(&mut self, slot: usize) -> &mut dyn OperatorSubsystem {
        self.0[slot].operator_mut()
    }
}

impl<C: SessionController> SessionBatch<C> {
    /// An empty batch.
    pub fn new() -> Self {
        SessionBatch {
            sessions: Vec::new(),
            controllers: Vec::new(),
            live_slots: Vec::new(),
            canonical: RdsSession::default_stages(),
            lanes: SoaLanes::default(),
            soa_slots: Vec::new(),
            serial_slots: Vec::new(),
            pos_default: Vec::new(),
            pos_custom: Vec::new(),
        }
    }

    /// Adds a session and its controller to the batch.
    pub fn push(&mut self, session: RdsSession, controller: C) {
        self.sessions.push(session);
        self.controllers.push(controller);
        self.live_slots.push(self.sessions.len() - 1);
    }

    /// Number of sessions in the batch (live or retired).
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the batch holds no sessions at all.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Number of sessions still live.
    pub fn live_count(&self) -> usize {
        self.live_slots.len()
    }

    /// The batch engine's columnar lanes (hot per-slot state mirrors,
    /// keyed by push order). Read-only: population-scale reducers can
    /// scan these dense arrays between ticks without touching sessions.
    pub fn lanes(&self) -> &SoaLanes {
        &self.lanes
    }

    /// Advances every live session by one tick. Returns the number of
    /// sessions stepped (0 = the batch is done).
    ///
    /// Batch-eligible sessions (canonical stage shape, null recorder)
    /// advance through the stage-major SoA sweep; the rest take the
    /// serial per-session path. Both are bit-for-bit equivalent — the
    /// batched-vs-serial digest suites pin it.
    pub fn step_all(&mut self) -> usize {
        // Retirement scan over the compact live-slot index. Sessions
        // share nothing, so the swap-remove reordering is digest-free.
        let mut k = 0;
        while k < self.live_slots.len() {
            let slot = self.live_slots[k];
            if self.controllers[slot].pre_step(&mut self.sessions[slot]) {
                k += 1;
            } else {
                self.live_slots.swap_remove(k);
            }
        }
        if self.live_slots.is_empty() {
            return 0;
        }
        let stepped = self.live_slots.len();

        self.soa_slots.clear();
        self.serial_slots.clear();
        for &slot in &self.live_slots {
            if self.sessions[slot].batched_eligible() {
                self.soa_slots.push(slot);
            } else {
                self.serial_slots.push(slot);
            }
        }

        // Serial path first: full per-stage telemetry spans, exactly the
        // hand-written loop.
        for &slot in &self.serial_slots {
            self.sessions[slot].step(self.controllers[slot].operator_mut());
        }

        if self.soa_slots.is_empty() {
            return stepped;
        }

        // Stage-major SoA sweep. Replicate the serial step() preamble
        // for every participant, then run each canonical stage across
        // all of them before moving to the next stage.
        self.lanes.ensure_slots(self.sessions.len());
        for &slot in &self.soa_slots {
            let session = &mut self.sessions[slot];
            session.core.obs.steps.inc();
            session.scratch.reset();
        }
        let Self {
            sessions,
            controllers,
            canonical,
            lanes,
            soa_slots,
            pos_default,
            pos_custom,
            ..
        } = self;
        let mut ops = ControllerOperators(controllers.as_mut_slice());
        for (i, stage) in canonical.iter_mut().enumerate() {
            // Per-position demotion: a slot whose stage at this position
            // was swapped in via `replace_stage` runs its own instance
            // in the per-session loop; everyone else takes the dense
            // sweep of the shared builtin.
            pos_default.clear();
            pos_custom.clear();
            for &slot in soa_slots.iter() {
                if sessions[slot].stages[i].is_default_impl() {
                    pos_default.push(slot);
                } else {
                    pos_custom.push(slot);
                }
            }
            if !pos_default.is_empty() {
                let mut ctx = BatchCtx {
                    sessions: sessions.as_mut_slice(),
                    ops: &mut ops,
                    slots: pos_default,
                    lanes,
                };
                stage.step_batch(&mut ctx);
            }
            for &slot in pos_custom.iter() {
                let RdsSession {
                    core,
                    stages,
                    scratch,
                } = &mut sessions[slot];
                let mut ctx = StageContext {
                    core,
                    operator: ops.operator_mut(slot),
                    scratch,
                };
                stages[i].advance(&mut ctx);
            }
        }
        stepped
    }

    /// Ticks until every session has retired.
    pub fn run_to_completion(&mut self) {
        while self.step_all() > 0 {}
    }

    /// Consumes the batch, returning every `(session, controller)` pair
    /// in insertion order.
    pub fn finish(self) -> Vec<(RdsSession, C)> {
        self.sessions.into_iter().zip(self.controllers).collect()
    }
}

impl<C: SessionController> Default for SessionBatch<C> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Digestible, PaperFault, RdsSessionConfig, ScriptedOperator};
    use rdsim_netem::InjectionWindow;
    use rdsim_roadnet::town05;
    use rdsim_simulator::{CameraConfig, World};
    use rdsim_units::{Hertz, SimDuration, SimTime};
    use rdsim_vehicle::{ControlInput, VehicleSpec};

    fn session(seed: u64) -> RdsSession {
        let mut world = World::new(town05(), seed);
        world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
        let config = RdsSessionConfig {
            camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
            ..RdsSessionConfig::default()
        };
        let mut s = RdsSession::new(world, config, seed);
        s.schedule_fault(InjectionWindow::new(
            SimTime::from_secs(1),
            SimDuration::from_secs(2),
            PaperFault::Loss5Pct.config(),
        ))
        .unwrap();
        s
    }

    fn throttle(seed: u64) -> ScriptedOperator {
        // Distinct per-seed throttle so sessions in a batch diverge.
        ScriptedOperator::constant(ControlInput::new(0.3 + (seed % 3) as f64 * 0.1, 0.0, 0.0))
    }

    #[test]
    fn batched_lockstep_matches_serial_digests() {
        let seeds = [11u64, 97, 1234, 4242];
        let steps = 250; // 5 s at 50 Hz

        // Serial reference: one session at a time, plain run loop.
        let serial: Vec<u64> = seeds
            .iter()
            .map(|&seed| {
                let mut s = session(seed);
                let mut op = throttle(seed);
                for _ in 0..steps {
                    s.step(&mut op);
                }
                s.into_log().digest()
            })
            .collect();

        // Batched: all four in lockstep on one "worker".
        let mut batch = SessionBatch::new();
        for &seed in &seeds {
            batch.push(session(seed), FixedRun::new(throttle(seed), steps));
        }
        batch.run_to_completion();
        assert_eq!(batch.live_count(), 0);
        let batched: Vec<u64> = batch
            .finish()
            .into_iter()
            .map(|(s, _)| s.into_log().digest())
            .collect();

        assert_eq!(serial, batched, "lockstep must be bit-for-bit serial");
        // The runs genuinely differ from one another (distinct seeds).
        assert!(serial.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn sessions_retire_individually() {
        let mut batch = SessionBatch::new();
        batch.push(session(1), FixedRun::new(throttle(1), 10));
        batch.push(session(2), FixedRun::new(throttle(2), 25));
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.live_count(), 2);
        for _ in 0..10 {
            assert_eq!(batch.step_all(), 2);
        }
        // First session is done; only the second still steps.
        assert_eq!(batch.step_all(), 1);
        assert_eq!(batch.live_count(), 1);
        batch.run_to_completion();
        assert_eq!(batch.live_count(), 0);
        assert_eq!(batch.step_all(), 0, "done batches are idle");
        let done = batch.finish();
        assert_eq!(done[0].0.time(), SimTime::from_millis(10 * 20));
        assert_eq!(done[1].0.time(), SimTime::from_millis(25 * 20));
    }

    #[test]
    fn boxed_controllers_work() {
        let mut batch: SessionBatch<Box<dyn SessionController>> = SessionBatch::default();
        assert!(batch.is_empty());
        batch.push(session(3), Box::new(FixedRun::new(throttle(3), 5)));
        batch.run_to_completion();
        let done = batch.finish();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0.time(), SimTime::from_millis(100));
    }
}
