//! The session step as an explicit stage pipeline.
//!
//! The paper's remote-driving loop is an ordered chain of subsystems —
//! sense → encode → uplink (NETEM) → display → operator → command →
//! downlink (NETEM) → actuate — plus the fault clock, the optional
//! vehicle-side safety stack and the logger. This module makes that chain
//! explicit: each link of it is a [`Stage`], and
//! [`crate::RdsSession::step`] is nothing but "run the stage list in
//! order", timing each stage into its own `session.stage.<name>_ns`
//! histogram when a live recorder is attached.
//!
//! Stages communicate through a [`StageContext`]: shared session state
//! (world, links, telemetry, run log) plus the per-tick [`StepScratch`]
//! that carries frames and commands from one stage to the next. The
//! decomposition is behaviour-preserving bit for bit — the seed-matrix
//! golden suite pins the run-log digests across the refactor — so new
//! link, codec or operator variants can be slotted in (via
//! [`crate::RdsSession::replace_stage`] /
//! [`crate::RdsSession::insert_stage_after`]) without touching the core
//! loop.
//!
//! The default stage order ([`crate::RdsSession::default_stages`]):
//!
//! ```text
//! fault_window → vehicle → capture → uplink → display → operator
//!              → downlink → actuate → safety → logging
//! ```

use crate::session::SessionCore;
use crate::{
    decode_command, encode_command_pooled, IncidentKind, OperatorSubsystem, ReceivedFrame,
};
use rdsim_netem::{Packet, PacketKind};
use rdsim_obs::{Recorder, TraceId, TraceStage, Tracer};
use rdsim_simulator::{decode_frame_recorded_into, VideoFrame, World, WorldSnapshot};
use rdsim_units::{SimDuration, SimTime};

/// Per-tick scratch state handed from stage to stage.
///
/// Reset at the start of every step; the producing stage fills a field,
/// the consuming stage takes it. Custom stages inserted into the pipeline
/// may read or rewrite any of it (e.g. a codec stage transforming
/// `frames` before the uplink sees them).
#[derive(Debug, Default)]
pub struct StepScratch {
    /// Post-physics simulation time of this tick (set by the vehicle
    /// stage; every later stage stamps its events with it).
    pub now: SimTime,
    /// Whether a fault rule was active when this tick started — constant
    /// for the whole tick, attributing its packet accounting to the
    /// inside/outside fault-window counters.
    pub in_window: bool,
    /// Link drop totals sampled before any traffic was offered, so the
    /// actuate stage can attribute this tick's drop delta.
    pub dropped_before: u64,
    /// Frames captured this tick (capture stage → uplink stage).
    pub frames: Vec<VideoFrame>,
    /// Wire-packet staging buffer: the uplink stage fills it with this
    /// tick's video packets and drains it into the link; the downlink
    /// stage reuses the (then empty) buffer for the command packet.
    pub packets: Vec<Packet>,
    /// Frames the uplink delivered this tick (uplink → display stage).
    pub arrived_frames: Vec<Packet>,
    /// The encoded command emitted this tick (operator → downlink stage).
    pub command: Option<Packet>,
    /// Commands the downlink delivered this tick (downlink → actuate).
    pub arrived_cmds: Vec<Packet>,
    /// A reusable [`ReceivedFrame`] holder for the display stage. Unlike
    /// the rest of the scratch it survives `reset`: it exists so decode
    /// can reuse the previous snapshot's actor allocation when the
    /// operator does not hand one back via
    /// [`OperatorSubsystem::recycle_frame`].
    pub spare_frame: Option<ReceivedFrame>,
}

impl StepScratch {
    /// Clears the per-tick state (the simulation clock stamp survives
    /// until the vehicle stage overwrites it, and the spare frame holder
    /// persists so its allocation keeps being reused).
    pub fn reset(&mut self) {
        self.in_window = false;
        self.dropped_before = 0;
        self.frames.clear();
        self.packets.clear();
        self.arrived_frames.clear();
        self.command = None;
        self.arrived_cmds.clear();
    }
}

/// Everything a stage may touch while advancing one tick.
///
/// Built-in stages reach into the session core directly (same crate);
/// external stages use the public accessors, which cover the world, the
/// clock, telemetry, tracing and incident marking.
pub struct StageContext<'a> {
    pub(crate) core: &'a mut SessionCore,
    /// The operator subsystem driving this session (the human-driver
    /// model, a scripted operator, a replay operator, …).
    pub operator: &'a mut dyn OperatorSubsystem,
    /// The tick's inter-stage scratch state.
    pub scratch: &'a mut StepScratch,
}

impl StageContext<'_> {
    /// Current simulation time (post-physics once the vehicle stage ran).
    pub fn time(&self) -> SimTime {
        self.core.time()
    }

    /// The fixed simulation step.
    pub fn dt(&self) -> SimDuration {
        self.core.dt
    }

    /// The simulated world (read access).
    pub fn world(&self) -> &World {
        self.core.server.world()
    }

    /// Mutable world access.
    pub fn world_mut(&mut self) -> &mut World {
        self.core.server.world_mut()
    }

    /// The session's telemetry recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.core.recorder
    }

    /// The session's causal tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.core.tracer
    }

    /// Marks a safety incident at `time`, recording a trace event and an
    /// incident mark that moves into the run log on completion.
    pub fn mark_incident(
        &mut self,
        kind: IncidentKind,
        time: SimTime,
        stage: TraceStage,
        arg: u64,
    ) {
        self.core.mark_incident(kind, time, stage, arg);
    }
}

/// One stage of the session pipeline.
///
/// A stage advances exactly one tick's worth of its subsystem, reading
/// and writing the shared [`StageContext`]. Stages hold no per-tick state
/// of their own — everything flows through [`StepScratch`] — so a stage
/// list can be rearranged or extended without hidden coupling.
///
/// Implementors must keep `name` and `span_name` stable: `name` addresses
/// the stage in [`crate::RdsSession::replace_stage`] and
/// [`crate::RdsSession::insert_stage_after`]; `span_name` is the
/// telemetry histogram (`session.stage.<name>_ns` by convention) the
/// stage's wall time is recorded under.
pub trait Stage: std::fmt::Debug + Send {
    /// Short stable identifier (e.g. `"uplink"`).
    fn name(&self) -> &'static str;

    /// Telemetry histogram name for this stage's per-tick wall time.
    fn span_name(&self) -> &'static str;

    /// Advances this stage by one tick.
    fn advance(&mut self, ctx: &mut StageContext<'_>);

    /// Advances this stage for every slot of a batched sweep (the
    /// stage-major loop of [`crate::SessionBatch`]). The default loops
    /// the slots through [`advance`](Self::advance) — bit-identical to
    /// the serial path by construction; builtins override it with dense
    /// loops that consult the [`crate::soa::SoaLanes`] deadline columns
    /// to skip work that provably cannot happen this tick.
    fn step_batch(&mut self, batch: &mut crate::soa::BatchCtx<'_>) {
        for k in 0..batch.len() {
            batch.with_slot(k, |ctx| self.advance(ctx));
        }
    }

    /// Whether this instance is the crate's builtin implementation of
    /// its stage name. `SessionBatch` only routes a pipeline position
    /// through the batched sweep when every participating session still
    /// runs the builtin there; a stage swapped in via
    /// [`crate::RdsSession::replace_stage`] returns `false` (the
    /// default) and transparently demotes that position to the
    /// per-session loop.
    fn is_default_impl(&self) -> bool {
        false
    }
}

/// The ten builtin stage names in their default pipeline order. A
/// session whose stage list still has exactly this shape (same length,
/// same names, same order) is a candidate for the batched stage-major
/// sweep; anything else falls back to the per-session path.
pub const CANONICAL_STAGE_NAMES: [&str; 10] = [
    "fault_window",
    "vehicle",
    "capture",
    "uplink",
    "display",
    "operator",
    "downlink",
    "actuate",
    "safety",
    "logging",
];

/// Declares a unit-struct stage with its stable name and span name.
macro_rules! stage_names {
    ($ty:ty, $name:literal) => {
        impl $ty {
            /// The stage's stable pipeline name.
            pub const NAME: &'static str = $name;
            /// The stage's telemetry span histogram.
            pub const SPAN: &'static str = concat!("session.stage.", $name, "_ns");
        }
    };
}

/// Stage 1 — fault clock: opens/closes scheduled fault windows on the
/// pre-step clock, mirrors the transitions as recorder events and
/// fault-edge incidents, and latches the tick's window attribution
/// ([`StepScratch::in_window`], [`StepScratch::dropped_before`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct FaultWindowStage;
stage_names!(FaultWindowStage, "fault_window");

impl Stage for FaultWindowStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn span_name(&self) -> &'static str {
        Self::SPAN
    }

    fn is_default_impl(&self) -> bool {
        true
    }

    fn advance(&mut self, ctx: &mut StageContext<'_>) {
        let core = &mut *ctx.core;
        let t_pre = core.time();
        core.injector.advance(&mut core.link, t_pre);
        core.sync_fault_events();
        // The window state is constant for the rest of the tick (rules
        // only change here or between ticks), so one flag attributes the
        // whole tick's packet accounting.
        ctx.scratch.in_window = core.injector.fault_active();
        ctx.scratch.dropped_before =
            core.link.uplink.stats().dropped + core.link.downlink.stats().dropped;
    }

    fn step_batch(&mut self, batch: &mut crate::soa::BatchCtx<'_>) {
        // Between fault edges the injector cannot change anything, so the
        // cached next-edge deadline replaces the per-tick window scan.
        // The epoch column invalidates the cache across schedule/ad-hoc
        // mutations (`schedule_fault`, `inject_now*`, `clear_fault_now`).
        for &slot in batch.slots {
            let session = &mut batch.sessions[slot];
            let core = &mut session.core;
            let t_pre = core.time();
            if batch.lanes.fault_epoch[slot] == core.injector.epoch()
                && t_pre.as_micros() < batch.lanes.fault_next_edge_us[slot]
            {
                session.scratch.in_window = batch.lanes.fault_in_window[slot];
            } else {
                core.injector.advance(&mut core.link, t_pre);
                core.sync_fault_events();
                session.scratch.in_window = core.injector.fault_active();
                batch.lanes.fault_in_window[slot] = session.scratch.in_window;
                batch.lanes.fault_next_edge_us[slot] = core.injector.next_edge_us(t_pre);
                batch.lanes.fault_epoch[slot] = core.injector.epoch();
            }
            session.scratch.dropped_before =
                core.link.uplink.stats().dropped + core.link.downlink.stats().dropped;
        }
    }
}

/// Stage 2 — vehicle physics: integrates the plant by one `dt` under the
/// active (or fallback) command and stamps the tick's post-physics clock
/// into [`StepScratch::now`].
#[derive(Debug, Default, Clone, Copy)]
pub struct VehicleStage;
stage_names!(VehicleStage, "vehicle");

impl Stage for VehicleStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn span_name(&self) -> &'static str {
        Self::SPAN
    }

    fn is_default_impl(&self) -> bool {
        true
    }

    fn advance(&mut self, ctx: &mut StageContext<'_>) {
        let dt = ctx.core.dt;
        ctx.core.server.advance_plant(dt);
        ctx.scratch.now = ctx.core.time();
    }

    fn step_batch(&mut self, batch: &mut crate::soa::BatchCtx<'_>) {
        // Dense integrate-then-scatter sweep: the plant state stays
        // authoritative inside each world; the ego kinematic columns are
        // gather-only mirrors refreshed right after integration.
        for &slot in batch.slots {
            let session = &mut batch.sessions[slot];
            let core = &mut session.core;
            core.server.advance_plant(core.dt);
            session.scratch.now = core.time();
            batch.lanes.now_us[slot] = session.scratch.now.as_micros();
            let world = core.server.world();
            if let Some(id) = world.ego_id() {
                let state = world.actor(id).state();
                let pos = state.position();
                batch.lanes.ego_x[slot] = pos.x;
                batch.lanes.ego_y[slot] = pos.y;
                batch.lanes.ego_heading[slot] = state.heading().get();
                batch.lanes.ego_speed[slot] = state.speed.get();
                batch.lanes.ego_accel[slot] = state.accel.get();
                batch.lanes.ego_steer[slot] = state.steer_angle.get();
            }
        }
    }
}

/// Stage 3 — sensing/capture: polls the camera sensor; any frames
/// captured this tick land in [`StepScratch::frames`] for the uplink.
#[derive(Debug, Default, Clone, Copy)]
pub struct CaptureStage;
stage_names!(CaptureStage, "capture");

impl Stage for CaptureStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn span_name(&self) -> &'static str {
        Self::SPAN
    }

    fn is_default_impl(&self) -> bool {
        true
    }

    fn advance(&mut self, ctx: &mut StageContext<'_>) {
        ctx.core.server.capture_into(&mut ctx.scratch.frames);
    }
}

/// Stage 4 — uplink (vehicle → operator): sequences every captured
/// frame into a video packet (tracing capture + encode), offers the
/// batch to the uplink NETEM direction and collects whatever the link
/// delivers this tick.
#[derive(Debug, Default, Clone, Copy)]
pub struct UplinkStage;
stage_names!(UplinkStage, "uplink");

impl Stage for UplinkStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn span_name(&self) -> &'static str {
        Self::SPAN
    }

    fn is_default_impl(&self) -> bool {
        true
    }

    fn advance(&mut self, ctx: &mut StageContext<'_>) {
        let now = ctx.scratch.now;
        let in_window = ctx.scratch.in_window;
        let core = &mut *ctx.core;
        let StepScratch {
            frames,
            packets,
            arrived_frames,
            ..
        } = &mut *ctx.scratch;
        for frame in frames.drain(..) {
            core.obs.frames_sent.inc();
            core.obs.window(in_window).0.inc();
            let seq = core.frame_seq;
            core.frame_seq += 1;
            let id = TraceId::frame(seq);
            let captured_us = frame.captured_at.as_micros();
            core.tracer
                .record(id, TraceStage::Capture, captured_us, frame.frame_id);
            core.tracer.record(
                id,
                TraceStage::Encode,
                captured_us,
                frame.payload.len() as u64,
            );
            packets.push(Packet::new(seq, PacketKind::Video, frame.payload));
        }
        core.link.uplink.transfer_into(packets, now, arrived_frames);
    }

    fn step_batch(&mut self, batch: &mut crate::soa::BatchCtx<'_>) {
        // Idle skip: with nothing captured this tick and the qdisc's
        // cached next-release head still in the future, the transfer is
        // provably a no-op (queue state only changes through transfers,
        // an empty dequeue only adds 0 to a counter, and the loss/RNG
        // path only draws per enqueued packet).
        for k in 0..batch.len() {
            let slot = batch.slot(k);
            {
                let session = &batch.sessions[slot];
                if session.scratch.frames.is_empty()
                    && batch.lanes.up_next_release_us[slot] > session.scratch.now.as_micros()
                {
                    continue;
                }
            }
            batch.with_slot(k, |ctx| self.advance(ctx));
            batch.lanes.up_next_release_us[slot] = batch.sessions[slot]
                .core
                .link
                .uplink
                .next_delivery()
                .map_or(u64::MAX, |t| t.as_micros());
        }
    }
}

/// Stage 5 — station display: decodes every delivered frame (corrupted
/// frames are rejected by checksum and surfaced as bad-frame
/// notifications), applies the optional infrastructure augmentation, and
/// shows good frames to the operator.
#[derive(Debug, Default, Clone, Copy)]
pub struct DisplayStage;
stage_names!(DisplayStage, "display");

impl Stage for DisplayStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn span_name(&self) -> &'static str {
        Self::SPAN
    }

    fn is_default_impl(&self) -> bool {
        true
    }

    fn advance(&mut self, ctx: &mut StageContext<'_>) {
        let now = ctx.scratch.now;
        let in_window = ctx.scratch.in_window;
        let StepScratch {
            arrived_frames,
            spare_frame,
            ..
        } = &mut *ctx.scratch;
        for pkt in arrived_frames.drain(..) {
            let core = &mut *ctx.core;
            let id = pkt.trace_id();
            // Decode into a recycled holder: the operator's previous frame
            // if it hands one back, else the pipeline's spare — so the
            // snapshot's actor allocation is reused tick after tick.
            let mut holder = ctx
                .operator
                .recycle_frame()
                .or_else(|| spare_frame.take())
                .unwrap_or_else(|| ReceivedFrame {
                    snapshot: WorldSnapshot {
                        time: SimTime::ZERO,
                        frame_id: 0,
                        ego: None,
                        others: Vec::new(),
                    },
                    captured_at: SimTime::ZERO,
                    received_at: SimTime::ZERO,
                });
            match decode_frame_recorded_into(&pkt.payload, &mut holder.snapshot, &core.recorder) {
                Ok(()) => {
                    core.obs.frames_delivered.inc();
                    core.obs.window(in_window).1.inc();
                    core.tracer
                        .record(id, TraceStage::Decode, now.as_micros(), pkt.len() as u64);
                    if let Some(infra) = &core.infrastructure {
                        holder.snapshot = infra.augment(&holder.snapshot);
                    }
                    let captured_at = holder.snapshot.time;
                    let age_us = now.saturating_since(captured_at).as_micros();
                    if let Some(h) = &core.obs.frame_age_us {
                        h.record(age_us);
                    }
                    if let Some(tl) = core.timeline.as_mut() {
                        // Exact glass-to-glass decomposition in integer µs:
                        // encode (capture → link send) + queue + propagation
                        // + display (release → delivering tick) == age.
                        let encode = pkt.sent_at.saturating_since(captured_at).as_micros();
                        let queue = pkt.queued.as_micros();
                        let prop = pkt.propagation.as_micros();
                        let display = age_us.saturating_sub(encode + queue + prop);
                        tl.window_mut(now.as_micros())
                            .record_frame(age_us, encode, queue, prop, display);
                    }
                    core.tracer
                        .record(id, TraceStage::Display, now.as_micros(), age_us);
                    core.last_displayed_frame = Some(pkt.seq);
                    holder.captured_at = captured_at;
                    holder.received_at = now;
                    ctx.operator.on_frame(holder);
                }
                Err(_) => {
                    core.obs.frames_corrupted.inc();
                    core.obs.window(in_window).3.inc();
                    core.tracer.record(
                        id,
                        TraceStage::DecodeFailed,
                        now.as_micros(),
                        pkt.len() as u64,
                    );
                    // Keep the holder for the next decode attempt.
                    *spare_frame = Some(holder);
                    ctx.operator.on_bad_frame(now);
                }
            }
        }
    }
}

/// Stage 6 — operator/driving: samples the operator's controls at the
/// station's command rate, sequences the command and encodes it into a
/// checksummed packet for the downlink. The command's emit event carries
/// the sequence number of the last displayed frame — the frame →
/// reaction → command causal link.
#[derive(Debug, Default, Clone, Copy)]
pub struct OperatorStage;
stage_names!(OperatorStage, "operator");

impl Stage for OperatorStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn span_name(&self) -> &'static str {
        Self::SPAN
    }

    fn is_default_impl(&self) -> bool {
        true
    }

    fn advance(&mut self, ctx: &mut StageContext<'_>) {
        let now = ctx.scratch.now;
        let control = ctx.operator.command(now);
        let core = &mut *ctx.core;
        let seq = core.cmd_seq;
        core.cmd_seq += 1;
        core.obs.commands_sent.inc();
        core.obs.window(ctx.scratch.in_window).0.inc();
        core.tracer.record(
            TraceId::command(seq),
            TraceStage::CommandEmit,
            now.as_micros(),
            core.last_displayed_frame.unwrap_or(u64::MAX),
        );
        ctx.scratch.command = Some(Packet::new(
            seq,
            PacketKind::Command,
            encode_command_pooled(seq, &control, &core.cmd_pool),
        ));
    }

    fn step_batch(&mut self, batch: &mut crate::soa::BatchCtx<'_>) {
        // The operator must be sampled every tick (it is the command
        // source), so the sweep only adds the hot-state gather into the
        // columnar mirrors after each sample.
        for k in 0..batch.len() {
            batch.with_slot(k, |ctx| self.advance(ctx));
            let slot = batch.slot(k);
            if let Some(hs) = batch.ops.operator_mut(slot).hot_state() {
                batch.lanes.op_wheel[slot] = hs.wheel;
                batch.lanes.op_steer_target[slot] = hs.steer_target;
                batch.lanes.op_next_update_us[slot] = hs.next_update_us;
            }
        }
    }
}

/// Stage 7 — downlink (operator → vehicle): offers the tick's command
/// packet to the downlink NETEM direction and collects whatever the link
/// delivers this tick.
#[derive(Debug, Default, Clone, Copy)]
pub struct DownlinkStage;
stage_names!(DownlinkStage, "downlink");

impl Stage for DownlinkStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn span_name(&self) -> &'static str {
        Self::SPAN
    }

    fn is_default_impl(&self) -> bool {
        true
    }

    fn advance(&mut self, ctx: &mut StageContext<'_>) {
        let now = ctx.scratch.now;
        let StepScratch {
            command,
            packets,
            arrived_cmds,
            ..
        } = &mut *ctx.scratch;
        // `packets` was drained by the uplink stage; restage it with the
        // tick's command instead of collecting a fresh one-element vec.
        packets.extend(command.take());
        ctx.core
            .link
            .downlink
            .transfer_into(packets, now, arrived_cmds);
    }

    fn step_batch(&mut self, batch: &mut crate::soa::BatchCtx<'_>) {
        // A command is offered every tick, so the downlink can never
        // idle-skip; the next-release column is maintained for symmetry
        // with the uplink and for lane-level diagnostics.
        for k in 0..batch.len() {
            batch.with_slot(k, |ctx| self.advance(ctx));
            let slot = batch.slot(k);
            batch.lanes.down_next_release_us[slot] = batch.sessions[slot]
                .core
                .link
                .downlink
                .next_delivery()
                .map_or(u64::MAX, |t| t.as_micros());
        }
    }
}

/// Stage 8 — command actuation: decodes every delivered command
/// (rejecting corrupted ones by checksum), feeds the vehicle-side QoS
/// estimator and applies the control to the plant. Also closes the
/// tick's fault-window drop accounting.
#[derive(Debug, Default, Clone, Copy)]
pub struct ActuateStage;
stage_names!(ActuateStage, "actuate");

impl Stage for ActuateStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn span_name(&self) -> &'static str {
        Self::SPAN
    }

    fn is_default_impl(&self) -> bool {
        true
    }

    fn advance(&mut self, ctx: &mut StageContext<'_>) {
        let now = ctx.scratch.now;
        let in_window = ctx.scratch.in_window;
        let dropped_before = ctx.scratch.dropped_before;
        let core = &mut *ctx.core;
        for pkt in ctx.scratch.arrived_cmds.drain(..) {
            let id = pkt.trace_id();
            match decode_command(&pkt.payload) {
                Ok((cmd_seq, ctrl)) => {
                    core.obs.commands_delivered.inc();
                    core.obs.window(in_window).1.inc();
                    let age_us = now.saturating_since(pkt.sent_at).as_micros();
                    if let Some(h) = &core.obs.command_age_us {
                        h.record(age_us);
                    }
                    if let Some(tl) = core.timeline.as_mut() {
                        let delayed = pkt.queued + pkt.propagation > SimDuration::ZERO;
                        tl.window_mut(now.as_micros())
                            .record_command(age_us, delayed);
                    }
                    core.tracer
                        .record(id, TraceStage::Actuate, now.as_micros(), age_us);
                    core.note_cmd_delivery(cmd_seq);
                    core.last_cmd_received_at = Some(now);
                    core.server.apply_command(ctrl);
                }
                Err(_) => {
                    core.obs.commands_corrupted.inc();
                    core.obs.window(in_window).3.inc();
                    core.tracer.record(
                        id,
                        TraceStage::DecodeFailed,
                        now.as_micros(),
                        pkt.len() as u64,
                    );
                }
            }
        }
        // Drops happen inside the links' enqueue, so the tick's delta is
        // attributable to the window state latched by the fault stage.
        let dropped_after = core.link.uplink.stats().dropped + core.link.downlink.stats().dropped;
        core.obs
            .window(in_window)
            .2
            .add(dropped_after - dropped_before);
    }
}

/// Stage 9 — safety stack: lets an installed vehicle-side safety stack
/// override the active command based on the QoS estimate — every tick,
/// not only when a command arrives (watchdogs act precisely when nothing
/// arrives). A no-op when no stack is installed, as in the paper's setup.
#[derive(Debug, Default, Clone, Copy)]
pub struct SafetyStage;
stage_names!(SafetyStage, "safety");

impl Stage for SafetyStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn span_name(&self) -> &'static str {
        Self::SPAN
    }

    fn is_default_impl(&self) -> bool {
        true
    }

    fn advance(&mut self, ctx: &mut StageContext<'_>) {
        let now = ctx.scratch.now;
        let core = &mut *ctx.core;
        if core.safety.is_some() {
            let qos = core.qos_estimate();
            let speed = {
                let world = core.server.world();
                world
                    .ego_id()
                    .map(|id| world.actor(id).state().speed)
                    .unwrap_or_default()
            };
            let active = core.server.active_command();
            let Some(stack) = core.safety.as_mut() else {
                unreachable!("checked above")
            };
            let effective = stack.apply(now, &qos, active, speed);
            if effective != active {
                core.server.apply_command(effective);
            }
        }
    }

    fn step_batch(&mut self, batch: &mut crate::soa::BatchCtx<'_>) {
        // Sessions without a safety stack (the paper's baseline) skip the
        // QoS estimate and world lookup entirely.
        for k in 0..batch.len() {
            if batch.sessions[batch.slot(k)].core.safety.is_none() {
                continue;
            }
            batch.with_slot(k, |ctx| self.advance(ctx));
        }
    }
}

/// Stage 10 — logging: appends the tick's ego/other samples to the run
/// log, runs the TTC breach-entry edge detector and drains collisions
/// and lane invasions into incident marks.
#[derive(Debug, Default, Clone, Copy)]
pub struct LoggingStage;
stage_names!(LoggingStage, "logging");

impl Stage for LoggingStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn span_name(&self) -> &'static str {
        Self::SPAN
    }

    fn is_default_impl(&self) -> bool {
        true
    }

    fn advance(&mut self, ctx: &mut StageContext<'_>) {
        let now = ctx.scratch.now;
        ctx.core.sample(now);
    }
}
