//! The operator subsystem: the driving station plus whoever sits at it.

use rdsim_simulator::WorldSnapshot;
use rdsim_units::{SimDuration, SimTime};
use rdsim_vehicle::ControlInput;

/// A frame as delivered to the driving station.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceivedFrame {
    /// Decoded scene.
    pub snapshot: WorldSnapshot,
    /// When the camera captured it.
    pub captured_at: SimTime,
    /// When it arrived at the station.
    pub received_at: SimTime,
}

impl ReceivedFrame {
    /// The glass-to-glass latency of this frame.
    pub fn latency(&self) -> SimDuration {
        self.received_at.saturating_since(self.captured_at)
    }
}

/// The operator subsystem of the RDS: consumes the video feed, produces
/// driving commands. Implemented by the simulated human driver models in
/// `rdsim-operator`, and by scripted operators for deterministic tests.
pub trait OperatorSubsystem {
    /// Delivers a successfully decoded frame to the station display.
    ///
    /// Frames arrive in network order, which under jitter is not capture
    /// order; implementations should ignore frames older than the newest
    /// one already shown (real video pipelines do the same).
    fn on_frame(&mut self, frame: ReceivedFrame);

    /// Notifies that a frame arrived but failed its checksum (corruption
    /// fault). Default: ignored, like a decoder dropping a broken frame.
    fn on_bad_frame(&mut self, _received_at: SimTime) {}

    /// Samples the operator's controls at time `now`. Called at the
    /// station's command rate (every session step).
    fn command(&mut self, now: SimTime) -> ControlInput;
}

/// A deterministic operator for tests and examples: plays a fixed control,
/// or a piecewise schedule.
#[derive(Debug, Clone)]
pub struct ScriptedOperator {
    schedule: Vec<(SimTime, ControlInput)>,
    frames_seen: u64,
    bad_frames: u64,
    last_frame_id: Option<u64>,
}

impl ScriptedOperator {
    /// An operator that always outputs the same control.
    pub fn constant(control: ControlInput) -> Self {
        ScriptedOperator {
            schedule: vec![(SimTime::ZERO, control)],
            frames_seen: 0,
            bad_frames: 0,
            last_frame_id: None,
        }
    }

    /// An operator following a piecewise-constant schedule: each entry
    /// `(from, control)` applies from its time until the next entry.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty or not sorted by time.
    pub fn piecewise(schedule: Vec<(SimTime, ControlInput)>) -> Self {
        assert!(!schedule.is_empty(), "schedule must not be empty");
        assert!(
            schedule.windows(2).all(|w| w[0].0 <= w[1].0),
            "schedule must be time-sorted"
        );
        ScriptedOperator {
            schedule,
            frames_seen: 0,
            bad_frames: 0,
            last_frame_id: None,
        }
    }

    /// Frames successfully received.
    pub fn frames_seen(&self) -> u64 {
        self.frames_seen
    }

    /// Corrupted frames notified.
    pub fn bad_frames(&self) -> u64 {
        self.bad_frames
    }

    /// Newest frame id displayed.
    pub fn last_frame_id(&self) -> Option<u64> {
        self.last_frame_id
    }
}

impl OperatorSubsystem for ScriptedOperator {
    fn on_frame(&mut self, frame: ReceivedFrame) {
        self.frames_seen += 1;
        if self
            .last_frame_id
            .is_none_or(|id| frame.snapshot.frame_id > id)
        {
            self.last_frame_id = Some(frame.snapshot.frame_id);
        }
    }

    fn on_bad_frame(&mut self, _received_at: SimTime) {
        self.bad_frames += 1;
    }

    fn command(&mut self, now: SimTime) -> ControlInput {
        let mut current = self.schedule[0].1;
        for (from, control) in &self.schedule {
            if *from <= now {
                current = *control;
            } else {
                break;
            }
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(id: u64, captured_ms: u64, received_ms: u64) -> ReceivedFrame {
        ReceivedFrame {
            snapshot: WorldSnapshot {
                time: SimTime::from_millis(captured_ms),
                frame_id: id,
                ego: None,
                others: Vec::new(),
            },
            captured_at: SimTime::from_millis(captured_ms),
            received_at: SimTime::from_millis(received_ms),
        }
    }

    #[test]
    fn latency() {
        assert_eq!(frame(0, 100, 150).latency(), SimDuration::from_millis(50));
    }

    #[test]
    fn constant_operator() {
        let mut op = ScriptedOperator::constant(ControlInput::full_throttle());
        assert_eq!(op.command(SimTime::ZERO), ControlInput::full_throttle());
        assert_eq!(
            op.command(SimTime::from_secs(100)),
            ControlInput::full_throttle()
        );
    }

    #[test]
    fn piecewise_schedule() {
        let mut op = ScriptedOperator::piecewise(vec![
            (SimTime::ZERO, ControlInput::full_throttle()),
            (SimTime::from_secs(5), ControlInput::full_brake()),
        ]);
        assert_eq!(
            op.command(SimTime::from_secs(1)),
            ControlInput::full_throttle()
        );
        assert_eq!(
            op.command(SimTime::from_secs(5)),
            ControlInput::full_brake()
        );
        assert_eq!(
            op.command(SimTime::from_secs(9)),
            ControlInput::full_brake()
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_schedule_panics() {
        let _ = ScriptedOperator::piecewise(vec![]);
    }

    #[test]
    fn frame_bookkeeping_ignores_stale() {
        let mut op = ScriptedOperator::constant(ControlInput::COAST);
        op.on_frame(frame(5, 0, 10));
        op.on_frame(frame(3, 0, 11)); // out-of-order: counted, not shown
        assert_eq!(op.frames_seen(), 2);
        assert_eq!(op.last_frame_id(), Some(5));
        op.on_bad_frame(SimTime::from_millis(12));
        assert_eq!(op.bad_frames(), 1);
    }
}
