//! The operator subsystem: the driving station plus whoever sits at it.
//!
//! This is the single home of both station abstractions: the behavioural
//! [`OperatorSubsystem`] trait (who sits at the station) and the
//! [`StationSpec`] rig inventory (what the station is built from,
//! Table I of the paper).

use rdsim_simulator::{CameraConfig, WorldSnapshot};
use rdsim_units::{Hertz, SimDuration, SimTime};
use rdsim_vehicle::ControlInput;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A frame as delivered to the driving station.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceivedFrame {
    /// Decoded scene.
    pub snapshot: WorldSnapshot,
    /// When the camera captured it.
    pub captured_at: SimTime,
    /// When it arrived at the station.
    pub received_at: SimTime,
}

impl ReceivedFrame {
    /// The glass-to-glass latency of this frame.
    pub fn latency(&self) -> SimDuration {
        self.received_at.saturating_since(self.captured_at)
    }
}

/// A compact read-out of an operator's hot control state, gathered into
/// the batch engine's columnar lanes after each operator tick (see
/// `rdsim_core::soa`). Purely observational: the authoritative state
/// stays inside the operator; the lanes mirror it for dense scans.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OperatorHotState {
    /// Current steering-wheel angle (what the emitted command carries).
    pub wheel: f64,
    /// The wheel angle the operator is currently slewing toward.
    pub steer_target: f64,
    /// Simulated time (µs) of the operator's next replanning update.
    pub next_update_us: u64,
}

/// The operator subsystem of the RDS: consumes the video feed, produces
/// driving commands. Implemented by the simulated human driver models in
/// `rdsim-operator`, and by scripted operators for deterministic tests.
pub trait OperatorSubsystem {
    /// Delivers a successfully decoded frame to the station display.
    ///
    /// Frames arrive in network order, which under jitter is not capture
    /// order; implementations should ignore frames older than the newest
    /// one already shown (real video pipelines do the same).
    fn on_frame(&mut self, frame: ReceivedFrame);

    /// Notifies that a frame arrived but failed its checksum (corruption
    /// fault). Default: ignored, like a decoder dropping a broken frame.
    fn on_bad_frame(&mut self, _received_at: SimTime) {}

    /// Samples the operator's controls at time `now`. Called at the
    /// station's command rate (every session step).
    fn command(&mut self, now: SimTime) -> ControlInput;

    /// Hands a no-longer-needed frame back to the pipeline so its
    /// snapshot allocation can be reused for the next decode.
    ///
    /// Called once before each frame delivery. Operators that keep
    /// frames (driver models buffering percepts) return `None` — the
    /// default — and the pipeline allocates a fresh holder; operators
    /// that consume frames immediately can return their previous one
    /// and make steady-state display allocation-free.
    fn recycle_frame(&mut self) -> Option<ReceivedFrame> {
        None
    }

    /// A columnar read-out of the operator's hot control state, if the
    /// implementation exposes one. The SoA batch engine gathers it into
    /// its per-slot lanes after every operator tick; `None` (the
    /// default) simply leaves those lanes untouched.
    fn hot_state(&self) -> Option<OperatorHotState> {
        None
    }
}

/// A deterministic operator for tests and examples: plays a fixed control,
/// or a piecewise schedule.
#[derive(Debug, Clone)]
pub struct ScriptedOperator {
    schedule: Vec<(SimTime, ControlInput)>,
    frames_seen: u64,
    bad_frames: u64,
    last_frame_id: Option<u64>,
    /// Most recent frame, kept only so `recycle_frame` can hand its
    /// allocation back to the pipeline.
    spare: Option<ReceivedFrame>,
}

impl ScriptedOperator {
    /// An operator that always outputs the same control.
    pub fn constant(control: ControlInput) -> Self {
        ScriptedOperator {
            schedule: vec![(SimTime::ZERO, control)],
            frames_seen: 0,
            bad_frames: 0,
            last_frame_id: None,
            spare: None,
        }
    }

    /// An operator following a piecewise-constant schedule: each entry
    /// `(from, control)` applies from its time until the next entry.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty or not sorted by time.
    pub fn piecewise(schedule: Vec<(SimTime, ControlInput)>) -> Self {
        assert!(!schedule.is_empty(), "schedule must not be empty");
        assert!(
            schedule.windows(2).all(|w| w[0].0 <= w[1].0),
            "schedule must be time-sorted"
        );
        ScriptedOperator {
            schedule,
            frames_seen: 0,
            bad_frames: 0,
            last_frame_id: None,
            spare: None,
        }
    }

    /// Frames successfully received.
    pub fn frames_seen(&self) -> u64 {
        self.frames_seen
    }

    /// Corrupted frames notified.
    pub fn bad_frames(&self) -> u64 {
        self.bad_frames
    }

    /// Newest frame id displayed.
    pub fn last_frame_id(&self) -> Option<u64> {
        self.last_frame_id
    }
}

impl OperatorSubsystem for ScriptedOperator {
    fn on_frame(&mut self, frame: ReceivedFrame) {
        self.frames_seen += 1;
        if self
            .last_frame_id
            .is_none_or(|id| frame.snapshot.frame_id > id)
        {
            self.last_frame_id = Some(frame.snapshot.frame_id);
        }
        self.spare = Some(frame);
    }

    fn on_bad_frame(&mut self, _received_at: SimTime) {
        self.bad_frames += 1;
    }

    fn command(&mut self, now: SimTime) -> ControlInput {
        let mut current = self.schedule[0].1;
        for (from, control) in &self.schedule {
            if *from <= now {
                current = *control;
            } else {
                break;
            }
        }
        current
    }

    fn recycle_frame(&mut self) -> Option<ReceivedFrame> {
        self.spare.take()
    }
}

/// Technical specification of a driving station, as Table I inventories
/// the paper's rig. Behaviourally, only the video frame-rate band enters
/// the simulation; the rest is faithfully recorded configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StationSpec {
    /// CPU and memory.
    pub cpu_and_ram: String,
    /// Display.
    pub monitor: String,
    /// Input devices.
    pub input_device: String,
    /// Graphics card.
    pub gpu: String,
    /// Operating system.
    pub operating_system: String,
    /// GPU driver version.
    pub gpu_driver: String,
    /// Video frame-rate band of the simulator feed.
    pub min_fps: Hertz,
    /// Upper end of the frame-rate band.
    pub max_fps: Hertz,
}

impl StationSpec {
    /// The paper's driving station (Table I) with its observed 25–30 fps
    /// simulator feed.
    pub fn paper_station() -> Self {
        StationSpec {
            cpu_and_ram: "Intel Core i7-12700K (12-core), 16 GB RAM".to_owned(),
            monitor: "34\" Samsung WQHD (3440x1440) curved".to_owned(),
            input_device: "Logitech G27 steering wheel and pedals".to_owned(),
            gpu: "NVIDIA GeForce RTX 3080, 10 GB".to_owned(),
            operating_system: "Ubuntu 18.04".to_owned(),
            gpu_driver: "470.103.01".to_owned(),
            min_fps: Hertz::new(25.0),
            max_fps: Hertz::new(30.0),
        }
    }

    /// The camera configuration this station produces.
    pub fn camera_config(&self) -> CameraConfig {
        CameraConfig {
            min_fps: self.min_fps,
            max_fps: self.max_fps,
            ..CameraConfig::default()
        }
    }
}

impl fmt::Display for StationSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CPU and RAM      {}", self.cpu_and_ram)?;
        writeln!(f, "Monitor          {}", self.monitor)?;
        writeln!(f, "Input device     {}", self.input_device)?;
        writeln!(f, "GPU              {}", self.gpu)?;
        writeln!(f, "Operating system {}", self.operating_system)?;
        writeln!(f, "NVIDIA driver    {}", self.gpu_driver)?;
        write!(
            f,
            "Video feed       {:.0}-{:.0} fps",
            self.min_fps.get(),
            self.max_fps.get()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(id: u64, captured_ms: u64, received_ms: u64) -> ReceivedFrame {
        ReceivedFrame {
            snapshot: WorldSnapshot {
                time: SimTime::from_millis(captured_ms),
                frame_id: id,
                ego: None,
                others: Vec::new(),
            },
            captured_at: SimTime::from_millis(captured_ms),
            received_at: SimTime::from_millis(received_ms),
        }
    }

    #[test]
    fn latency() {
        assert_eq!(frame(0, 100, 150).latency(), SimDuration::from_millis(50));
    }

    #[test]
    fn constant_operator() {
        let mut op = ScriptedOperator::constant(ControlInput::full_throttle());
        assert_eq!(op.command(SimTime::ZERO), ControlInput::full_throttle());
        assert_eq!(
            op.command(SimTime::from_secs(100)),
            ControlInput::full_throttle()
        );
    }

    #[test]
    fn piecewise_schedule() {
        let mut op = ScriptedOperator::piecewise(vec![
            (SimTime::ZERO, ControlInput::full_throttle()),
            (SimTime::from_secs(5), ControlInput::full_brake()),
        ]);
        assert_eq!(
            op.command(SimTime::from_secs(1)),
            ControlInput::full_throttle()
        );
        assert_eq!(
            op.command(SimTime::from_secs(5)),
            ControlInput::full_brake()
        );
        assert_eq!(
            op.command(SimTime::from_secs(9)),
            ControlInput::full_brake()
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_schedule_panics() {
        let _ = ScriptedOperator::piecewise(vec![]);
    }

    #[test]
    fn frame_bookkeeping_ignores_stale() {
        let mut op = ScriptedOperator::constant(ControlInput::COAST);
        op.on_frame(frame(5, 0, 10));
        op.on_frame(frame(3, 0, 11)); // out-of-order: counted, not shown
        assert_eq!(op.frames_seen(), 2);
        assert_eq!(op.last_frame_id(), Some(5));
        op.on_bad_frame(SimTime::from_millis(12));
        assert_eq!(op.bad_frames(), 1);
    }

    #[test]
    fn paper_station_matches_table1() {
        let s = StationSpec::paper_station();
        assert!(s.cpu_and_ram.contains("i7-12700K"));
        assert!(s.monitor.contains("3440x1440"));
        assert!(s.input_device.contains("G27"));
        assert!(s.gpu.contains("RTX 3080"));
        assert_eq!(s.operating_system, "Ubuntu 18.04");
        assert_eq!(s.min_fps, Hertz::new(25.0));
        assert_eq!(s.max_fps, Hertz::new(30.0));
    }

    #[test]
    fn camera_config_uses_band() {
        let c = StationSpec::paper_station().camera_config();
        assert_eq!(c.min_fps, Hertz::new(25.0));
        assert_eq!(c.max_fps, Hertz::new(30.0));
    }

    #[test]
    fn station_display_renders_all_rows() {
        let text = StationSpec::paper_station().to_string();
        for key in [
            "CPU",
            "Monitor",
            "Input",
            "GPU",
            "Operating",
            "driver",
            "fps",
        ] {
            assert!(text.contains(key), "missing {key}");
        }
    }
}
