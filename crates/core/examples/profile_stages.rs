//! Per-stage cost profile: steps one session 5000 ticks with a live
//! recorder and prints every `session.stage.*_ns` histogram, sorted by
//! total time — the quickest way to see where a tick's budget goes
//! (this is how the `RoadNetwork::project` hotspot behind the AABB
//! pruning in `rdsim-roadnet` was found).
//!
//! ```text
//! cargo run --release -p rdsim-core --example profile_stages
//! ```

use rdsim_core::{RdsSession, RdsSessionConfig, ScriptedOperator};
use rdsim_netem::InjectionWindow;
use rdsim_roadnet::town05;
use rdsim_simulator::{CameraConfig, World};
use rdsim_units::{Hertz, SimDuration, SimTime};
use rdsim_vehicle::{ControlInput, VehicleSpec};

fn main() {
    let registry = rdsim_obs::Registry::new();
    let seed = 1000u64;
    let mut world = World::new(town05(), seed);
    world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
    let config = RdsSessionConfig {
        camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
        recorder: registry.recorder(),
        tracer: rdsim_obs::Tracer::null(),
        ..RdsSessionConfig::default()
    };
    let mut s = RdsSession::new(world, config, seed);
    s.schedule_fault(InjectionWindow::new(
        SimTime::from_secs(5),
        SimDuration::from_secs(5),
        rdsim_core::PaperFault::Delay25ms.config(),
    ))
    .unwrap();
    let mut op = ScriptedOperator::constant(ControlInput::new(0.3, 0.0, 0.0));
    for _ in 0..5_000 {
        s.step(&mut op);
    }
    let t = registry.snapshot();
    let mut rows: Vec<(String, u64, u128)> = t
        .histograms
        .iter()
        .filter(|(k, _)| k.ends_with("_ns"))
        .map(|(k, h)| (k.clone(), h.count, h.sum))
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.2));
    let total: u128 = rows
        .iter()
        .filter(|(k, _, _)| k.starts_with("session.stage."))
        .map(|r| r.2)
        .sum();
    println!(
        "total staged ns over 5000 steps: {total} ({} ns/step)",
        total / 5000u128
    );
    for (k, c, sum) in rows {
        println!(
            "{k:40} count={c:7} sum={sum:12} ns  mean={:7} ns",
            sum / (c.max(1) as u128)
        );
    }
}
