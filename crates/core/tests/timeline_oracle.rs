//! Oracle tests for the per-window safety timeline.
//!
//! The timeline is a *decomposition* of signals the session already
//! measures, so it must reconcile exactly with the whole-run telemetry:
//! the per-window frame/command age counts and sums partition the
//! `session.frame_age_us` / `session.command_age_us` histogram totals,
//! and within every window the four latency legs (encode, queue,
//! propagation, display) sum back to the recorded frame age — all in
//! integer microseconds, so "exactly" means `==`, not a tolerance.

use rdsim_core::{Digestible, RdsSession, RdsSessionConfig, ScriptedOperator};
use rdsim_netem::{InjectionWindow, NetemConfig};
use rdsim_obs::{Registry, RunTelemetry, Timeline};
use rdsim_roadnet::town05;
use rdsim_simulator::{CameraConfig, World};
use rdsim_units::{Hertz, Millis, Ratio, SimDuration, SimTime};
use rdsim_vehicle::{ControlInput, VehicleSpec};

const STEPS: u64 = 900;

/// Every qdisc branch live at once, so all four legs are exercised.
fn stress_config() -> NetemConfig {
    NetemConfig::default()
        .with_jittered_delay(Millis::new(60.0), Millis::new(20.0), Ratio::new(0.25))
        .with_loss(Ratio::new(0.02))
        .with_duplicate(Ratio::new(0.05))
        .with_corrupt(Ratio::new(0.05))
        .with_reorder(Ratio::new(0.05), 3)
        .with_rate(40_000_000)
}

fn run() -> (Timeline, RunTelemetry) {
    let seed = 4_242;
    let mut world = World::new(town05(), seed);
    world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
    let registry = Registry::new();
    let config = RdsSessionConfig {
        camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
        recorder: registry.recorder(),
        timeline: true,
        ..RdsSessionConfig::default()
    };
    let mut s = RdsSession::new(world, config, seed);
    s.schedule_fault(InjectionWindow::new(
        SimTime::from_secs(3),
        SimDuration::from_secs(8),
        stress_config(),
    ))
    .expect("one window");
    s.preallocate(SimDuration::from_secs(20));
    let mut operator = ScriptedOperator::constant(ControlInput::new(0.3, 0.05, 0.0));
    for _ in 0..STEPS {
        s.step(&mut operator);
    }
    (s.take_timeline(), registry.snapshot())
}

#[test]
fn window_sums_reconcile_with_run_totals() {
    let (tl, t) = run();
    assert!(!tl.is_empty(), "timeline was enabled");

    // Frame ages: the windows partition the whole-run histogram exactly.
    let fa = t.histogram("session.frame_age_us").expect("frame ages");
    let count: u64 = tl.windows().iter().map(|w| w.frame_count).sum();
    let sum: u128 = tl
        .windows()
        .iter()
        .map(|w| u128::from(w.frame_age_sum_us))
        .sum();
    assert!(count > 0, "frames were delivered");
    assert_eq!(count, fa.count, "per-window frame counts partition the run");
    assert_eq!(sum, fa.sum, "per-window frame age sums partition the run");
    let max = tl.windows().iter().map(|w| w.frame_age_max_us).max();
    assert_eq!(max, Some(fa.max), "the worst window holds the run maximum");

    // Command ages: same reconciliation.
    let ca = t.histogram("session.command_age_us").expect("command ages");
    let count: u64 = tl.windows().iter().map(|w| w.cmd_count).sum();
    let sum: u128 = tl
        .windows()
        .iter()
        .map(|w| u128::from(w.cmd_age_sum_us))
        .sum();
    assert!(count > 0, "commands were actuated");
    assert_eq!(count, ca.count);
    assert_eq!(sum, ca.sum);

    // The per-leg decomposition is exact within every window.
    let mut delayed_legs = false;
    for w in tl.windows() {
        assert_eq!(
            w.encode_sum_us + w.queue_sum_us + w.prop_sum_us + w.display_sum_us,
            w.frame_age_sum_us,
            "legs must sum to the glass-to-glass age"
        );
        assert!(w.frame_age_max_us <= fa.max);
        delayed_legs |= w.queue_sum_us + w.prop_sum_us > 0;
    }
    assert!(
        delayed_legs,
        "the fault window put time on the network legs"
    );

    // The fault window shows up in the bitmask, and quiet time does not.
    let faulted = tl.windows().iter().filter(|w| w.fault_bits != 0).count();
    assert!(faulted >= 8, "the 8 s injection spans at least 8 windows");
    assert!(
        tl.windows().iter().any(|w| w.fault_bits == 0),
        "pre/post-fault windows are clean"
    );
}

#[test]
fn timeline_is_deterministic() {
    let (a, ta) = run();
    let (b, tb) = run();
    assert_eq!(a, b);
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(
        ta.histogram("session.frame_age_us").map(|h| h.count),
        tb.histogram("session.frame_age_us").map(|h| h.count)
    );
}
