//! Edge-transition coverage for fault windows driven through a session:
//! open/close exactly on tick boundaries, zero-length windows, and
//! overlap handling for delay + loss rules.

use rdsim_core::{PaperFault, RdsSession, RdsSessionConfig, ScriptedOperator};
use rdsim_netem::{InjectionWindow, NetemConfig};
use rdsim_roadnet::town05;
use rdsim_simulator::{CameraConfig, World};
use rdsim_units::{Hertz, Millis, Ratio, SimDuration, SimTime};
use rdsim_vehicle::{ControlInput, VehicleSpec};

fn session(seed: u64) -> RdsSession {
    let mut world = World::new(town05(), seed);
    world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
    let config = RdsSessionConfig {
        camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
        ..RdsSessionConfig::default()
    };
    RdsSession::new(world, config, seed)
}

#[test]
fn window_edges_land_exactly_on_tick_boundaries() {
    // dt = 20 ms; the window's start and end both coincide with a tick's
    // pre-step clock, so the injector must transition at exactly those
    // times — not one tick early or late.
    let mut s = session(1);
    s.schedule_fault(InjectionWindow::new(
        SimTime::from_secs(1),
        SimDuration::from_secs(2),
        PaperFault::Delay50ms.config(),
    ))
    .unwrap();
    let mut op = ScriptedOperator::constant(ControlInput::new(0.3, 0.0, 0.0));
    s.run(&mut op, SimDuration::from_secs(5));

    // Both edges surfaced as incident marks at the boundary times.
    let incidents = s.incidents().to_vec();
    assert_eq!(incidents.len(), 2, "open + close edges");
    assert_eq!(incidents[0].time, SimTime::from_secs(1));
    assert_eq!(incidents[1].time, SimTime::from_secs(3));

    let log = s.into_log();
    let events = log.fault_events();
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].time, SimTime::from_secs(1), "opens on its tick");
    assert_eq!(events[1].time, SimTime::from_secs(3), "closes on its tick");
}

#[test]
fn off_grid_window_end_closes_on_next_tick_boundary() {
    // A window ending between ticks (1.00 s .. 1.03 s with dt = 20 ms)
    // stays active through the 1.02 s tick and is closed by the 1.04 s
    // tick — logged at the window's own end time, as NETEM's rule
    // deletion timestamp would be.
    let mut s = session(2);
    s.schedule_fault(InjectionWindow::new(
        SimTime::from_secs(1),
        SimDuration::from_millis(30),
        PaperFault::Delay25ms.config(),
    ))
    .unwrap();
    let mut op = ScriptedOperator::constant(ControlInput::COAST);
    s.run(&mut op, SimDuration::from_secs(2));
    let log = s.into_log();
    let events = log.fault_events();
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].time, SimTime::from_secs(1));
    assert_eq!(events[1].time, SimTime::from_millis(1030));
}

#[test]
fn zero_length_window_never_activates() {
    // `[start, start)` contains no instant: the rule must never be
    // applied, and the log must stay clean.
    let mut s = session(3);
    s.schedule_fault(InjectionWindow::new(
        SimTime::from_secs(1),
        SimDuration::ZERO,
        PaperFault::Loss5Pct.config(),
    ))
    .unwrap();
    let mut op = ScriptedOperator::constant(ControlInput::new(0.3, 0.0, 0.0));
    s.run(&mut op, SimDuration::from_secs(3));
    assert!(s.incidents().is_empty(), "no edges from an empty window");
    let stats = s.stats();
    assert_eq!(stats.commands_delivered, stats.commands_sent, "no loss");
    let log = s.into_log();
    assert!(log.fault_events().is_empty());
}

#[test]
fn zero_length_window_inside_another_still_conflicts() {
    // Zero-length windows occupy no time, but scheduling one strictly
    // inside an existing window is still rejected — the schedule stays
    // one-fault-at-a-time by construction.
    let mut s = session(4);
    let delay = InjectionWindow::new(
        SimTime::from_secs(1),
        SimDuration::from_secs(2),
        PaperFault::Delay50ms.config(),
    );
    s.schedule_fault(delay).unwrap();
    let empty_inside = InjectionWindow::new(
        SimTime::from_secs(2),
        SimDuration::ZERO,
        PaperFault::Loss2Pct.config(),
    );
    assert_eq!(s.schedule_fault(empty_inside).unwrap_err(), delay);
    // On the boundary it is allowed (nothing overlaps a point on an edge).
    let empty_on_edge = InjectionWindow::new(
        SimTime::from_secs(3),
        SimDuration::ZERO,
        PaperFault::Loss2Pct.config(),
    );
    s.schedule_fault(empty_on_edge).unwrap();
}

#[test]
fn overlapping_delay_and_loss_windows_are_rejected() {
    let mut s = session(5);
    let delay = InjectionWindow::new(
        SimTime::from_secs(1),
        SimDuration::from_secs(2),
        PaperFault::Delay50ms.config(),
    );
    s.schedule_fault(delay).unwrap();
    // A loss window overlapping the delay window is refused and the
    // conflicting window is reported back.
    let overlapping_loss = InjectionWindow::new(
        SimTime::from_millis(2_500),
        SimDuration::from_secs(2),
        PaperFault::Loss5Pct.config(),
    );
    assert_eq!(s.schedule_fault(overlapping_loss).unwrap_err(), delay);
    // Back-to-back (touching at t = 3 s) is fine: the close and the open
    // land on the same tick, in that order.
    let adjacent_loss = InjectionWindow::new(
        SimTime::from_secs(3),
        SimDuration::from_secs(1),
        PaperFault::Loss5Pct.config(),
    );
    s.schedule_fault(adjacent_loss).unwrap();
    let mut op = ScriptedOperator::constant(ControlInput::new(0.3, 0.0, 0.0));
    s.run(&mut op, SimDuration::from_secs(5));
    let log = s.into_log();
    let events = log.fault_events();
    assert_eq!(events.len(), 4, "two windows, two edges each");
    assert_eq!(events[1].time, SimTime::from_secs(3), "delay closes");
    assert_eq!(events[2].time, SimTime::from_secs(3), "loss opens");
    assert_eq!(
        PaperFault::from_config(&events[2].config),
        Some(PaperFault::Loss5Pct)
    );
}

#[test]
fn combined_delay_plus_loss_rule_degrades_both_ways() {
    // One window whose NETEM rule combines delay and loss (the injector
    // schedules whole configs, not single knobs): commands must arrive
    // late AND lossy while it is open.
    let combined = NetemConfig::default()
        .with_delay(Millis::new(50.0))
        .with_loss(Ratio::from_percent(30.0));
    let registry = rdsim_obs::Registry::new();
    let mut world = World::new(town05(), 6);
    world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
    let config = RdsSessionConfig {
        camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
        recorder: registry.recorder(),
        ..RdsSessionConfig::default()
    };
    let mut s = RdsSession::new(world, config, 6);
    s.schedule_fault(InjectionWindow::new(
        SimTime::ZERO,
        SimDuration::from_secs(3600),
        combined,
    ))
    .unwrap();
    let mut op = ScriptedOperator::constant(ControlInput::new(0.3, 0.0, 0.0));
    s.run(&mut op, SimDuration::from_secs(20));
    let stats = s.stats();
    // Loss component: ~30 % of 1000 commands dropped.
    assert!(stats.commands_delivered < stats.commands_sent * 9 / 10);
    assert!(stats.commands_delivered > stats.commands_sent / 2);
    drop(s);
    let t = registry.snapshot();
    // Delay component: no command applied younger than the rule's delay.
    let ages = t.histogram("session.command_age_us").expect("ages");
    assert_eq!(ages.count, stats.commands_delivered);
    assert!(ages.min >= 50_000, "delay floor holds under loss");
    // Everything was inside the (always-open) window.
    assert_eq!(t.counter("session.fault_window.outside.sent"), 0);
    assert_eq!(
        t.counter("session.fault_window.inside.sent"),
        stats.frames_sent + stats.commands_sent
    );
    assert!(t.counter("session.fault_window.inside.dropped") > 0);
}
