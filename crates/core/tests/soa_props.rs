//! SoA batch engine equivalence properties.
//!
//! Random fault grammars × random batch widths × random retirement
//! times: the stage-major SoA sweep of [`SessionBatch`] must gather
//! back to exactly the per-session run-log digest. Also covers the
//! demotion paths: a stage swapped via `replace_stage` (per-position
//! fallback inside an otherwise-SoA batch) and a pipeline reshaped via
//! `insert_stage_after` (whole-session serial fallback) must leave the
//! digests bit-identical too.

use proptest::prelude::*;
use rdsim_core::pipeline::UplinkStage;
use rdsim_core::{
    Digestible, FixedRun, PaperFault, RdsSession, RdsSessionConfig, ScriptedOperator, SessionBatch,
    Stage, StageContext,
};
use rdsim_netem::InjectionWindow;
use rdsim_roadnet::town05;
use rdsim_simulator::{CameraConfig, World};
use rdsim_units::{Hertz, SimDuration, SimTime};
use rdsim_vehicle::{ControlInput, VehicleSpec};

/// One randomly drawn session: seed, fault grammar, lifetime in steps.
#[derive(Debug, Clone, Copy)]
struct Recipe {
    seed: u64,
    fault_idx: usize,
    start_ms: u64,
    dur_ms: u64,
    second_window: bool,
    steps: u64,
}

impl Recipe {
    /// Expands one 64-bit draw into a recipe (the property strategies
    /// draw a base seed and index-salt it per batch slot).
    fn from_bits(bits: u64) -> Recipe {
        Recipe {
            seed: bits | 1,
            fault_idx: (bits >> 8) as usize % PaperFault::ALL.len(),
            start_ms: 200 + (bits >> 16) % 2_000,
            dur_ms: 100 + (bits >> 24) % 1_500,
            second_window: (bits >> 32) & 1 == 1,
            steps: 40 + (bits >> 40) % 200,
        }
    }
}

fn salted(base: u64, i: usize) -> u64 {
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0xD1B5_4A32_D192_ED03_u64.wrapping_mul(i as u64 + 1))
}

fn build(r: &Recipe) -> RdsSession {
    let mut world = World::new(town05(), r.seed);
    world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
    let config = RdsSessionConfig {
        camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
        ..RdsSessionConfig::default()
    };
    let mut s = RdsSession::new(world, config, r.seed);
    let fault = PaperFault::ALL[r.fault_idx];
    s.schedule_fault(InjectionWindow::new(
        SimTime::from_millis(r.start_ms),
        SimDuration::from_millis(r.dur_ms),
        fault.config(),
    ))
    .unwrap();
    if r.second_window {
        // A second, disjoint window strictly after the first.
        s.schedule_fault(InjectionWindow::new(
            SimTime::from_millis(r.start_ms + r.dur_ms + 300),
            SimDuration::from_millis(400),
            PaperFault::ALL[(r.fault_idx + 2) % PaperFault::ALL.len()].config(),
        ))
        .unwrap();
    }
    s
}

fn operator(r: &Recipe) -> ScriptedOperator {
    // Distinct per-seed throttle so sessions in a batch diverge.
    ScriptedOperator::constant(ControlInput::new(0.2 + (r.seed % 5) as f64 * 0.1, 0.0, 0.0))
}

fn serial_digest(r: &Recipe) -> u64 {
    let mut s = build(r);
    let mut op = operator(r);
    for _ in 0..r.steps {
        s.step(&mut op);
    }
    s.into_log().digest()
}

/// A delegating wrapper around the builtin uplink stage. Behaviourally
/// identical, but `is_default_impl` stays `false` (the trait default),
/// so the batch must demote the uplink position of any session carrying
/// it to the per-session loop.
#[derive(Debug, Default)]
struct WrappedUplink(UplinkStage);

impl Stage for WrappedUplink {
    fn name(&self) -> &'static str {
        UplinkStage::NAME
    }

    fn span_name(&self) -> &'static str {
        UplinkStage::SPAN
    }

    fn advance(&mut self, ctx: &mut StageContext<'_>) {
        self.0.advance(ctx);
    }
}

/// A do-nothing extra stage: inserting it reshapes the pipeline to 11
/// stages, demoting the whole session to the serial path, without
/// changing any observable behaviour.
#[derive(Debug, Default)]
struct NoopStage;

impl Stage for NoopStage {
    fn name(&self) -> &'static str {
        "noop_probe"
    }

    fn span_name(&self) -> &'static str {
        "session.stage.noop_probe_ns"
    }

    fn advance(&mut self, _ctx: &mut StageContext<'_>) {}
}

proptest! {
    /// Random fault grammar × random batch width × random per-session
    /// retirement: SoA lanes gather back to the exact serial digests.
    #[test]
    fn soa_sweep_matches_serial_digests(
        base in proptest::num::u64::ANY,
        width in 1usize..=6,
    ) {
        let recipes: Vec<Recipe> =
            (0..width).map(|i| Recipe::from_bits(salted(base, i))).collect();
        let serial: Vec<u64> = recipes.iter().map(serial_digest).collect();

        let mut batch = SessionBatch::new();
        for r in &recipes {
            batch.push(build(r), FixedRun::new(operator(r), r.steps));
        }
        batch.run_to_completion();
        prop_assert_eq!(batch.live_count(), 0);
        let batched: Vec<u64> = batch
            .finish()
            .into_iter()
            .map(|(s, _)| s.into_log().digest())
            .collect();
        prop_assert_eq!(serial, batched);
    }

    /// Mixed-mode batch: one session has its uplink stage replaced by a
    /// delegating wrapper (forced per-position fallback) and another has
    /// an extra no-op stage (whole-session serial fallback); the rest
    /// take the dense sweep. All digests must still match the plain
    /// serial reference, since neither demotion changes behaviour.
    #[test]
    fn mixed_mode_demotions_stay_digest_identical(
        base in proptest::num::u64::ANY,
        width in 3usize..=6,
    ) {
        let recipes: Vec<Recipe> =
            (0..width).map(|i| Recipe::from_bits(salted(base, i))).collect();
        let serial: Vec<u64> = recipes.iter().map(serial_digest).collect();

        let mut batch = SessionBatch::new();
        for (i, r) in recipes.iter().enumerate() {
            let mut s = build(r);
            if i == 0 {
                prop_assert!(s.replace_stage("uplink", Box::new(WrappedUplink::default())));
            } else if i == 1 {
                prop_assert!(s.insert_stage_after("logging", Box::new(NoopStage)));
            }
            batch.push(s, FixedRun::new(operator(r), r.steps));
        }
        batch.run_to_completion();
        let batched: Vec<u64> = batch
            .finish()
            .into_iter()
            .map(|(s, _)| s.into_log().digest())
            .collect();
        prop_assert_eq!(serial, batched);
    }

    /// The columnar mirrors are genuinely maintained: after a batch
    /// drains, every slot's clock lane holds the session's final time,
    /// and the uplink deadline lane was initialised/updated (0 means
    /// "never swept", which cannot happen for an eligible session).
    #[test]
    fn lanes_mirror_final_session_state(
        base in proptest::num::u64::ANY,
        width in 1usize..=5,
    ) {
        let recipes: Vec<Recipe> =
            (0..width).map(|i| Recipe::from_bits(salted(base, i))).collect();
        let mut batch = SessionBatch::new();
        for r in &recipes {
            batch.push(build(r), FixedRun::new(operator(r), r.steps));
        }
        batch.run_to_completion();
        let now_us = batch.lanes().now_us().to_vec();
        let up_next = batch.lanes().up_next_release_us().to_vec();
        for (slot, (s, _)) in batch.finish().into_iter().enumerate() {
            prop_assert_eq!(now_us[slot], s.time().as_micros());
            prop_assert!(up_next[slot] > 0, "uplink deadline lane never written");
        }
    }
}
