//! Steady-state allocation gate for the session datapath.
//!
//! Run with the counting allocator enabled:
//!
//! ```text
//! cargo test -p rdsim-core --features alloc-count --test alloc_regression
//! ```
//!
//! Installs [`rdsim_obs::CountingAlloc`] as the global allocator, warms a
//! full remote-driving session (pools, scratch, run log, trace ring, the
//! netem queues, one complete fault window plus the opening edge of a
//! second), then asserts the steady-state step —
//! capture → encode → uplink → display → operator → downlink → actuate,
//! with delay/loss/duplicate/corrupt/reorder faults live — performs
//! **zero** heap allocations per step. The per-stage breakdown (the same
//! wrapper for every pipeline stage) localises any regression to the
//! stage that caused it.
#![cfg(feature = "alloc-count")]

use rdsim_core::{RdsSession, RdsSessionConfig, ScriptedOperator, Stage, StageContext};
use rdsim_netem::{InjectionWindow, NetemConfig};
use rdsim_obs::{alloc_counts, Registry};
use rdsim_roadnet::town05;
use rdsim_simulator::{CameraConfig, World};
use rdsim_units::{Hertz, Millis, Ratio, SimDuration, SimTime};
use rdsim_vehicle::{ControlInput, VehicleSpec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[global_allocator]
static ALLOC: rdsim_obs::CountingAlloc = rdsim_obs::CountingAlloc;

const WARMUP_STEPS: u64 = 350;
const MEASURE_STEPS: u64 = 650;

/// Every qdisc branch in one config (mirrors the `alloc` bench).
fn stress_config() -> NetemConfig {
    NetemConfig::default()
        .with_jittered_delay(Millis::new(60.0), Millis::new(20.0), Ratio::new(0.25))
        .with_loss(Ratio::new(0.02))
        .with_duplicate(Ratio::new(0.05))
        .with_corrupt(Ratio::new(0.05))
        .with_reorder(Ratio::new(0.05), 3)
        .with_rate(40_000_000)
}

fn session() -> RdsSession {
    let seed = 7_777;
    let mut world = World::new(town05(), seed);
    world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
    let config = RdsSessionConfig {
        camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
        // The timeline layer must hold the zero-allocation bar too: its
        // windows come from `preallocate`, never from the step path.
        timeline: true,
        ..RdsSessionConfig::default()
    };
    let mut s = RdsSession::new(world, config, seed);
    s.schedule_fault(InjectionWindow::new(
        SimTime::from_secs(2),
        SimDuration::from_secs(2),
        stress_config(),
    ))
    .expect("non-overlapping windows");
    s.schedule_fault(InjectionWindow::new(
        SimTime::from_secs(6),
        SimDuration::from_secs(54),
        stress_config(),
    ))
    .expect("non-overlapping windows");
    s.preallocate(SimDuration::from_secs(20));
    s
}

/// Wraps a pipeline stage, accumulating the allocator events its
/// `advance` performs — the breakdown that names the offending stage
/// when the zero-allocation gate trips.
#[derive(Debug)]
struct CountingStage {
    inner: Box<dyn Stage>,
    allocs: Arc<AtomicU64>,
    bytes: Arc<AtomicU64>,
}

impl Stage for CountingStage {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn span_name(&self) -> &'static str {
        self.inner.span_name()
    }

    fn advance(&mut self, ctx: &mut StageContext<'_>) {
        let before = alloc_counts();
        self.inner.advance(ctx);
        let spent = alloc_counts().since(before);
        self.allocs.fetch_add(spent.allocs, Ordering::Relaxed);
        self.bytes.fetch_add(spent.bytes, Ordering::Relaxed);
    }
}

#[test]
fn steady_state_step_allocates_nothing() {
    let mut s = session();

    // Shadow every stage with a counting wrapper (same order, same
    // behaviour — the wrapper only reads the allocator counters).
    let mut meters: Vec<(&'static str, Arc<AtomicU64>, Arc<AtomicU64>)> = Vec::new();
    for stage in RdsSession::default_stages() {
        let allocs = Arc::new(AtomicU64::new(0));
        let bytes = Arc::new(AtomicU64::new(0));
        let name = stage.name();
        assert!(s.replace_stage(
            name,
            Box::new(CountingStage {
                inner: stage,
                allocs: allocs.clone(),
                bytes: bytes.clone(),
            }),
        ));
        meters.push((name, allocs, bytes));
    }

    let mut operator = ScriptedOperator::constant(ControlInput::new(0.3, 0.0, 0.0));
    for _ in 0..WARMUP_STEPS {
        s.step(&mut operator);
    }

    for (_, allocs, bytes) in &meters {
        allocs.store(0, Ordering::Relaxed);
        bytes.store(0, Ordering::Relaxed);
    }
    let start = alloc_counts();
    for _ in 0..MEASURE_STEPS {
        s.step(&mut operator);
    }
    let spent = alloc_counts().since(start);

    // Surface the measurement through the telemetry layer, same gauges
    // as the alloc bench publishes.
    let registry = Registry::new();
    let recorder = registry.recorder();
    recorder
        .gauge("session.allocs_per_step")
        .set(spent.allocs as f64 / MEASURE_STEPS as f64);
    recorder
        .gauge("session.alloc_bytes_per_step")
        .set(spent.bytes as f64 / MEASURE_STEPS as f64);

    let breakdown: Vec<String> = meters
        .iter()
        .map(|(name, allocs, bytes)| {
            format!(
                "{name}: {} allocs / {} B",
                allocs.load(Ordering::Relaxed),
                bytes.load(Ordering::Relaxed)
            )
        })
        .collect();
    assert_eq!(
        spent.allocs,
        0,
        "steady-state datapath allocated {} times ({} B) over {MEASURE_STEPS} steps;\n  {}",
        spent.allocs,
        spent.bytes,
        breakdown.join("\n  ")
    );

    // The session still works after the measured window (sanity).
    let log = s.into_log();
    assert!(!log.ego_samples().is_empty());
}
