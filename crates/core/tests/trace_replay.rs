//! Trace-replay through a full session: dense measured-network edges
//! must behave identically on the serial and SoA-batch paths, and a
//! rate-overloaded segment must surface *queue* drops (congestion)
//! separately from loss-model drops in both telemetry and the timeline.

use rdsim_core::{
    Digestible, FixedRun, RdsSession, RdsSessionConfig, ScriptedOperator, SessionBatch,
};
use rdsim_netem::TraceSchedule;
use rdsim_obs::{Registry, Timeline};
use rdsim_roadnet::town05;
use rdsim_simulator::{CameraConfig, World};
use rdsim_units::{Hertz, SimDuration, SimTime};
use rdsim_vehicle::{ControlInput, VehicleSpec};

/// A dense synthetic measurement: a new sample every 100 ms for 4 s
/// (40 samples, dt = 20 ms → an edge lands every 5 ticks). Conditions
/// cycle so consecutive samples never merge, keeping the compiled edge
/// schedule as dense as the sample grid.
fn dense_trace() -> TraceSchedule {
    let mut text = String::new();
    for i in 0..40 {
        let t = i as f64 * 0.1;
        let line = match i % 4 {
            0 => format!("{{\"t\": {t}, \"delay_ms\": 30.0, \"jitter_ms\": 5.0}}\n"),
            1 => format!("{{\"t\": {t}, \"delay_ms\": 60.0, \"loss_pct\": 2.0}}\n"),
            2 => format!("{{\"t\": {t}}}\n"),
            _ => format!("{{\"t\": {t}, \"delay_ms\": 15.0, \"rate_kbit\": 2000}}\n"),
        };
        text.push_str(&line);
    }
    TraceSchedule::parse("dense", &text).unwrap()
}

fn session(seed: u64, trace: &TraceSchedule) -> RdsSession {
    let mut world = World::new(town05(), seed);
    world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
    let config = RdsSessionConfig {
        camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
        ..RdsSessionConfig::default()
    };
    let mut s = RdsSession::new(world, config, seed);
    s.schedule_trace(trace).unwrap();
    s
}

fn operator(seed: u64) -> ScriptedOperator {
    ScriptedOperator::constant(ControlInput::new(0.2 + (seed % 5) as f64 * 0.1, 0.0, 0.0))
}

const STEPS: u64 = 300; // 6 s: past the trace end, so both edge kinds retire.

/// The SoA batch's cached `next_edge_us` fast path must stay exact when
/// config edges arrive every few ticks instead of twice a run: gathering
/// the batch back must reproduce the serial run-log digests bit for bit.
#[test]
fn dense_trace_edges_match_serial_digests_through_the_batch() {
    let trace = dense_trace();
    assert!(trace.edges() >= 60, "the schedule really is dense");

    let seeds = [11_u64, 12, 13, 14, 15, 16];
    let serial: Vec<u64> = seeds
        .iter()
        .map(|&seed| {
            let mut s = session(seed, &trace);
            let mut op = operator(seed);
            for _ in 0..STEPS {
                s.step(&mut op);
            }
            s.into_log().digest()
        })
        .collect();

    let mut batch = SessionBatch::new();
    for &seed in &seeds {
        batch.push(session(seed, &trace), FixedRun::new(operator(seed), STEPS));
    }
    batch.run_to_completion();
    assert_eq!(batch.live_count(), 0);
    let batched: Vec<u64> = batch
        .finish()
        .into_iter()
        .map(|(s, _)| s.into_log().digest())
        .collect();
    assert_eq!(serial, batched);
}

/// Every trace edge the injector replays is logged, so the run log (and
/// through it the digest) pins the trace *content*, not just its label.
#[test]
fn trace_edges_are_logged_as_fault_events() {
    let trace = dense_trace();
    let mut s = session(21, &trace);
    let mut op = operator(21);
    for _ in 0..STEPS {
        s.step(&mut op);
    }
    let log = s.into_log();
    assert_eq!(log.fault_events().len(), trace.edges());
    assert_eq!(log.fault_events()[0].time, SimTime::ZERO);
}

/// A trace segment whose rate is far below the video bitrate: the
/// BDP-sized queue fills and tail-drops. Those congestion drops must be
/// visible in telemetry and the timeline as `queue_dropped`, disjoint
/// from the loss-model `dropped` ledger (zero here — the trace carries
/// no loss).
#[test]
fn overload_surfaces_queue_drops_distinct_from_loss() {
    // 25 Hz × 2000 B = 400 kbit/s of video into a 100 kbit/s segment:
    // 4× oversubscribed, 16-packet BDP-floor queue ⇒ steady tail-drop.
    let text = "{\"t\": 0.0, \"delay_ms\": 20.0, \"rate_kbit\": 100}\n\
                {\"t\": 10.0, \"delay_ms\": 20.0, \"rate_kbit\": 100}\n";
    let trace = TraceSchedule::parse("choke", text).unwrap();

    let seed = 33;
    let mut world = World::new(town05(), seed);
    world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
    let registry = Registry::new();
    let config = RdsSessionConfig {
        camera: CameraConfig::fixed(Hertz::new(25.0), 2_000),
        recorder: registry.recorder(),
        timeline: true,
        ..RdsSessionConfig::default()
    };
    let mut s = RdsSession::new(world, config, seed);
    s.schedule_trace(&trace).unwrap();
    let mut op = ScriptedOperator::constant(ControlInput::new(0.3, 0.0, 0.0));
    s.run(&mut op, SimDuration::from_secs(12));

    let tl = s.take_timeline();
    drop(s);
    let t = registry.snapshot();

    let queue_dropped = t.counter("netem.uplink.queue_dropped");
    assert!(queue_dropped > 50, "sustained overload: {queue_dropped}");
    assert_eq!(
        t.counter("netem.uplink.dropped"),
        0,
        "no loss model, so the loss ledger stays empty"
    );

    let tl_queue: u64 = tl.windows().iter().map(|w| w.up_queue_dropped).sum();
    let tl_loss: u64 = tl.windows().iter().map(|w| w.up_dropped).sum();
    assert_eq!(tl_queue, queue_dropped, "timeline partitions the counter");
    assert_eq!(tl_loss, 0);

    // The windows carrying queue drops flag the finite-limit fault bit.
    let flagged = tl
        .windows()
        .iter()
        .filter(|w| w.up_queue_dropped > 0)
        .all(|w| w.fault_bits & Timeline::FAULT_LIMIT != 0);
    assert!(flagged, "queue drops only happen under a finite limit");
}
