//! NETEM playground: push a synthetic packet stream through different
//! fault rules and watch the delivery statistics — the network emulator
//! in isolation, without the driving stack.
//!
//! ```text
//! cargo run --release --example netem_playground
//! ```

use rdsim::netem::{Link, NetemConfig, Packet, PacketKind};
use rdsim::units::{SimDuration, SimTime};

/// Sends `n` video-sized packets at 27 fps through a rule and reports.
fn exercise(rule: &str, n: u64) {
    let config: NetemConfig = rule.parse().expect("valid rule");
    let mut link = Link::with_config(config, 7);
    let frame_gap = SimDuration::from_micros(37_037); // ≈ 27 fps
    let tick = SimDuration::from_millis(1);
    let mut now = SimTime::ZERO;
    let mut next_send = SimTime::ZERO;
    let mut seq = 0u64;
    let mut received = Vec::new();
    // Poll the link every millisecond so measured latency reflects the
    // emulator, not the sender's frame cadence.
    while seq < n || link.in_flight() > 0 {
        if seq < n && now >= next_send {
            link.send(Packet::new(seq, PacketKind::Video, vec![0u8; 20_000]), now);
            seq += 1;
            next_send += frame_gap;
        }
        received.extend(link.receive(now));
        now += tick;
        if now > SimTime::from_secs(300) {
            break; // safety valve for pathological rules
        }
    }

    let stats = link.stats();
    let reordered = received.windows(2).filter(|w| w[1].seq < w[0].seq).count();
    println!("{rule:<28} delivered {:>4}/{:<4}  loss {:>5.1}%  mean lat {:>7.1} ms  max {:>7.1} ms  dup {:>2}  corrupt {:>2}  reordered {:>3}",
        stats.delivered,
        stats.sent,
        stats.loss_rate() * 100.0,
        stats.mean_latency().as_millis_f64(),
        stats.max_latency.as_millis_f64(),
        stats.duplicates,
        stats.corrupted,
        reordered,
    );
}

fn main() {
    println!("1000 video frames (20 kB each) at ~27 fps through each rule:\n");
    for rule in [
        "passthrough",
        "delay 5ms",
        "delay 25ms",
        "delay 50ms",
        "delay 100ms 20ms 25%",
        "loss 2%",
        "loss 5%",
        "loss gemodel 2% 20% 80% 0%",
        "duplicate 2%",
        "corrupt 1%",
        "delay 60ms reorder 25% gap 5",
        "rate 4mbit",
        "delay 50ms 10ms 25% loss 5%",
    ] {
        exercise(rule, 1000);
    }
    println!("\nThe same rules drive the fault injector in the HIL sessions;");
    println!("`FaultInjector` adds and deletes them at scheduled times and logs");
    println!("every transition, as the paper's §V.F logging schema requires.");
}
