//! Safety-measure evaluation — the use the paper's methodology was built
//! for: "to investigate which safety measures are adequate … and to be
//! able to validate that the implemented measures actually perform as
//! expected, comprehensive testing is needed" (§I).
//!
//! Drives the vehicle-following scenario under severe network conditions,
//! with and without a vehicle-side safety stack, and compares outcomes.
//!
//! ```text
//! cargo run --release --example safety_measures
//! ```

use rdsim::core::safety::{CommandWatchdog, DegradedModeLimiter, SafeStop, SafetyStack};
use rdsim::core::{RdsSession, RdsSessionConfig};
use rdsim::netem::NetemConfig;
use rdsim::operator::{HumanDriverModel, Instruction, SubjectProfile};
use rdsim::roadnet::town05;
use rdsim::simulator::{ActorKind, Behavior, World};
use rdsim::units::{MetersPerSecond, Ratio, SimDuration};
use rdsim::vehicle::VehicleSpec;

struct Outcome {
    collisions: u64,
    distance: f64,
    final_speed: f64,
    interventions: usize,
}

/// A harsh scenario: approaching a parked van at speed while the network
/// degrades badly mid-run.
fn run(fault: &str, with_stack: bool, seed: u64) -> Outcome {
    let net = town05();
    let lane = net.spawn_point("ego-start").expect("spawn").lane;
    let mut world = World::new(net.clone(), seed);
    world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
    world.spawn_npc_at(
        "slalom-1",
        ActorKind::Vehicle,
        VehicleSpec::van(),
        Behavior::Stationary,
        MetersPerSecond::ZERO,
    );
    let mut session = RdsSession::new(world, RdsSessionConfig::default(), seed);
    if with_stack {
        session.set_safety_stack(
            SafetyStack::new()
                .push(Box::new(DegradedModeLimiter::new(
                    Ratio::from_percent(10.0),
                    MetersPerSecond::new(5.0),
                )))
                .push(Box::new(CommandWatchdog::new(SimDuration::from_millis(
                    300,
                ))))
                .push(Box::new(SafeStop::new(SimDuration::from_millis(1500)))),
        );
    }
    let mut driver = HumanDriverModel::new(&SubjectProfile::typical("safety"), net, seed);
    driver.set_instruction(Instruction::drive(lane, MetersPerSecond::new(12.0)));

    // 10 s healthy, then the network turns hostile for 25 s.
    session.run(&mut driver, SimDuration::from_secs(10));
    session.inject_now(fault.parse::<NetemConfig>().expect("valid rule"));
    session.run(&mut driver, SimDuration::from_secs(25));

    let world = session.world();
    let ego = world.ego_id().expect("ego");
    let state = world.actor(ego).state();
    Outcome {
        collisions: world.collision_count(),
        distance: state.position().x - 20.0,
        final_speed: state.speed.get(),
        interventions: session
            .safety_stack()
            .map(|s| s.interventions().len())
            .unwrap_or(0),
    }
}

fn main() {
    println!("Approaching a parked van while the network degrades mid-run.\n");
    println!(
        "{:<26} {:<8} {:>10} {:>12} {:>12} {:>14}",
        "condition", "stack", "crashes", "distance", "final v", "interventions"
    );
    for fault in ["delay 250ms", "loss 60%", "loss 95%"] {
        for with_stack in [false, true] {
            let o = run(fault, with_stack, 77);
            println!(
                "{:<26} {:<8} {:>10} {:>9.0} m {:>9.1} m/s {:>14}",
                fault,
                if with_stack { "yes" } else { "no" },
                o.collisions,
                o.distance,
                o.final_speed,
                o.interventions
            );
        }
    }
    println!("\nThe stack trades availability for safety: degraded mode caps speed");
    println!("under loss, the watchdog neutralises stale commands, and safe-stop");
    println!("halts the vehicle when the command link dies entirely.");
}
