//! Fault-injection lab: test any `tc netem`-style rule against the
//! vehicle-following scenario and print the safety metrics.
//!
//! ```text
//! cargo run --release --example fault_injection_lab -- "delay 100ms 20ms 25%"
//! cargo run --release --example fault_injection_lab -- "loss gemodel 2% 20% 80%"
//! cargo run --release --example fault_injection_lab -- "loss 5% rate 4mbit"
//! ```

use rdsim::core::{RdsSession, RdsSessionConfig};
use rdsim::metrics::{steering_reversal_rate, ttc_series, SrrConfig, TtcConfig, TtcStats};
use rdsim::netem::NetemConfig;
use rdsim::operator::{HumanDriverModel, Instruction, SubjectProfile};
use rdsim::roadnet::town05;
use rdsim::simulator::{ActorKind, Behavior, LaneFollowConfig, World};
use rdsim::units::{MetersPerSecond, SimDuration};
use rdsim::vehicle::VehicleSpec;
use std::process::ExitCode;

fn main() -> ExitCode {
    let rule = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "loss 5%".to_owned());
    let fault: NetemConfig = match rule.parse() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("examples: \"delay 50ms\", \"loss 5%\", \"delay 25ms 5ms 25% loss 2%\"");
            return ExitCode::FAILURE;
        }
    };
    println!("rule: {fault}\n");

    let net = town05();
    let lane = net.spawn_point("ego-start").expect("spawn").lane;
    let mut world = World::new(net.clone(), 99);
    world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
    world.spawn_npc_at(
        "lead-start",
        ActorKind::Vehicle,
        VehicleSpec::passenger_car(),
        Behavior::LaneFollow(LaneFollowConfig::urban(MetersPerSecond::new(8.5))),
        MetersPerSecond::new(8.5),
    );
    let mut session = RdsSession::new(world, RdsSessionConfig::default(), 99);
    let mut driver = HumanDriverModel::new(&SubjectProfile::typical("lab"), net, 99);
    driver.set_instruction(Instruction::drive(lane, MetersPerSecond::new(12.0)));

    // 30 s clean baseline, 60 s under the rule, 30 s recovery.
    session.run(&mut driver, SimDuration::from_secs(30));
    session.inject_now(fault);
    session.run(&mut driver, SimDuration::from_secs(60));
    session.clear_fault_now();
    session.run(&mut driver, SimDuration::from_secs(30));

    let stats = session.stats();
    println!("transport:");
    println!(
        "  frames   sent {:>6}  delivered {:>6}  corrupted {:>4}",
        stats.frames_sent, stats.frames_delivered, stats.frames_corrupted
    );
    println!(
        "  commands sent {:>6}  delivered {:>6}  corrupted {:>4}",
        stats.commands_sent, stats.commands_delivered, stats.commands_corrupted
    );

    let collisions = session.world().collision_count();
    let invasions = session.world().lane_invasion_count();
    let log = session.into_log();

    println!("\nsafety metrics over the whole run:");
    let ttc_cfg = TtcConfig::default();
    let series = ttc_series(&log, &ttc_cfg);
    match TtcStats::from_samples(&series, &ttc_cfg) {
        Some(t) => println!(
            "  TTC: max {:.1} s, avg {:.1} s, min {:.1} s ({} violations of the 6 s threshold)",
            t.max.get(),
            t.avg.get(),
            t.min.get(),
            t.violations
        ),
        None => println!("  TTC: no approaching-lead intervals observed"),
    }
    match steering_reversal_rate(&log.steering_series(), &SrrConfig::default()) {
        Some(srr) => println!("  SRR: {:.1} reversals/min", srr.rate_per_min),
        None => println!("  SRR: signal unusable"),
    }
    println!("  collisions: {collisions}, lane invasions: {invasions}");
    println!("  fault events logged: {}", log.fault_events().len());
    ExitCode::SUCCESS
}
