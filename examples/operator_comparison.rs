//! Operator comparison: how subject experience shapes resilience to
//! network disturbances — the correlation the paper's questionnaire was
//! designed to probe (§V.E, §VII).
//!
//! All nine subject × fault cells are independent sessions, so they run
//! through the SoA batch engine ([`SessionBatch`]) in lockstep sweeps of
//! up to [`BATCH`] sessions — bit-identical to stepping them one at a
//! time, just faster.
//!
//! ```text
//! cargo run --release --example operator_comparison
//! ```

use rdsim::core::{FixedRun, RdsSession, RdsSessionConfig, SessionBatch};
use rdsim::metrics::{steering_reversal_rate, SrrConfig};
use rdsim::netem::NetemConfig;
use rdsim::operator::{
    Experience, Familiarity, Handedness, HumanDriverModel, Instruction, SubjectProfile,
};
use rdsim::roadnet::town05;
use rdsim::simulator::World;
use rdsim::units::{MetersPerSecond, SimDuration};
use rdsim::vehicle::VehicleSpec;

/// Default lockstep width for the batch engine — the sensible resting
/// state now that the SoA sweep makes wide batches cheap.
const BATCH: usize = 16;

fn subject(
    name: &str,
    gaming: Experience,
    station: Familiarity,
    attentiveness: f64,
) -> SubjectProfile {
    SubjectProfile {
        id: name.to_owned(),
        gaming,
        racing_games: gaming != Experience::None,
        station,
        handedness: Handedness::RightTraffic,
        attentiveness,
    }
}

fn main() {
    let subjects = [
        subject(
            "expert  (recent gamer, station-familiar)",
            Experience::Recent,
            Familiarity::Few,
            0.85,
        ),
        subject(
            "typical (past gamer, first time)        ",
            Experience::Past,
            Familiarity::None,
            0.65,
        ),
        subject(
            "novice  (no gaming, first time)         ",
            Experience::None,
            Familiarity::None,
            0.45,
        ),
    ];
    let faults: [(&str, Option<NetemConfig>); 3] = [
        ("clean", None),
        ("50ms", Some("delay 50ms".parse().expect("rule"))),
        ("5%", Some("loss 5%".parse().expect("rule"))),
    ];

    // Build every subject × fault cell (90 s of lane driving each) …
    let net = town05();
    let lane = net.spawn_point("ego-start").expect("spawn").lane;
    let config = RdsSessionConfig::default();
    let steps = SimDuration::from_secs(90).div_steps(config.dt);
    let mut cells = Vec::new();
    for profile in &subjects {
        for (i, (_, fault)) in faults.iter().enumerate() {
            let seed = 555 + i as u64;
            let mut world = World::new(net.clone(), seed);
            world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
            let mut session = RdsSession::new(world, config.clone(), seed);
            if let Some(f) = fault {
                session.inject_now(*f);
            }
            let mut driver = HumanDriverModel::new(profile, net.clone(), seed);
            driver.set_instruction(Instruction::drive(lane, MetersPerSecond::new(12.0)));
            cells.push((session, driver));
        }
    }

    // … and step them to completion in lockstep groups of BATCH.
    let mut results: Vec<(f64, f64)> = Vec::new();
    let mut cells = cells.into_iter().peekable();
    while cells.peek().is_some() {
        let mut batch = SessionBatch::new();
        for (session, driver) in cells.by_ref().take(BATCH) {
            batch.push(session, FixedRun::new(driver, steps));
        }
        batch.run_to_completion();
        results.extend(batch.finish().into_iter().map(|(session, _)| {
            let log = session.into_log();
            let srr = steering_reversal_rate(&log.steering_series(), &SrrConfig::default())
                .map(|r| r.rate_per_min)
                .unwrap_or(f64::NAN);
            let worst_lat = log
                .ego_samples()
                .iter()
                .filter(|s| s.speed.get() > 1.0)
                .filter_map(|s| net.project(s.position))
                .map(|p| p.lateral.get().abs())
                .fold(0.0f64, f64::max);
            (srr, worst_lat)
        }));
    }

    println!("90 s of lane driving; cells: SRR rev/min (worst lateral m)\n");
    print!("{:<44}", "subject");
    for (label, _) in &faults {
        print!(" {label:>16}");
    }
    println!();
    for (si, profile) in subjects.iter().enumerate() {
        print!("{:<44}", profile.id);
        for fi in 0..faults.len() {
            let (srr, lat) = results[si * faults.len() + fi];
            print!(" {:>9.1} ({:>3.1})", srr, lat);
        }
        println!();
    }
    println!("\nExperienced operators hold lower reversal rates under the same");
    println!("disturbance — the correlation §VII proposes using for remote-driver");
    println!("training and screening.");
}
