//! Quickstart: drive a remotely operated car through an emulated network
//! fault and look at what the safety metrics say.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rdsim::core::{RdsSession, RdsSessionConfig};
use rdsim::metrics::{steering_reversal_rate, SrrConfig};
use rdsim::netem::NetemConfig;
use rdsim::operator::{HumanDriverModel, Instruction, SubjectProfile};
use rdsim::roadnet::town05;
use rdsim::simulator::{ActorKind, Behavior, LaneFollowConfig, World};
use rdsim::units::{Meters, MetersPerSecond, SimDuration};
use rdsim::vehicle::VehicleSpec;

fn drive(fault: Option<NetemConfig>, seed: u64) -> (f64, u64, f64) {
    // A Town-5-like map with an ego car and a lead vehicle to follow.
    let net = town05();
    let lane = net.spawn_point("ego-start").expect("map has spawn").lane;
    let mut world = World::new(net.clone(), seed);
    world.spawn_ego_at("ego-start", VehicleSpec::passenger_car());
    world.spawn_npc_at(
        "lead-start",
        ActorKind::Vehicle,
        VehicleSpec::passenger_car(),
        Behavior::LaneFollow(LaneFollowConfig::urban(MetersPerSecond::new(9.0))),
        MetersPerSecond::new(9.0),
    );

    // The RDS session: vehicle ↔ emulated network ↔ operator.
    let mut session = RdsSession::new(world, RdsSessionConfig::default(), seed);
    if let Some(fault) = fault {
        session.inject_now(fault);
    }

    // A simulated human remote driver at the station.
    let mut driver = HumanDriverModel::new(&SubjectProfile::typical("demo"), net, seed);
    driver.set_instruction(Instruction::drive(lane, MetersPerSecond::new(12.0)));

    session.run(&mut driver, SimDuration::from_secs(60));

    let lead_gap = session
        .world()
        .ego_lead_gap(Meters::new(150.0))
        .map(|(_, gap, _)| gap.get())
        .unwrap_or(f64::NAN);
    let collisions = session.world().collision_count();
    let log = session.into_log();
    let srr = steering_reversal_rate(&log.steering_series(), &SrrConfig::default())
        .map(|r| r.rate_per_min)
        .unwrap_or(0.0);
    (srr, collisions, lead_gap)
}

fn main() {
    println!("One minute of remote driving on the town05 ring, following a lead vehicle.\n");
    let conditions: [(&str, Option<NetemConfig>); 3] = [
        ("no fault", None),
        (
            "delay 50ms",
            Some("delay 50ms".parse().expect("valid rule")),
        ),
        ("loss 5%", Some("loss 5%".parse().expect("valid rule"))),
    ];
    println!(
        "{:<12} {:>18} {:>12} {:>14}",
        "condition", "SRR (rev/min)", "collisions", "lead gap (m)"
    );
    for (label, fault) in conditions {
        let (srr, collisions, gap) = drive(fault, 2024);
        println!("{label:<12} {srr:>18.1} {collisions:>12} {gap:>14.1}");
    }
    println!("\nHigher steering-reversal rates under network disturbance reproduce");
    println!("the paper's core observation (Table IV).");
}
